"""Web renaming: one variable per live range.

The paper assumes "each live range represents one variable" (section 3
footnote).  Source programs routinely reuse a scratch name for many
disconnected def-use chains; such a variable's occupied slots can span
several NSRs even though no single value is live across a CSB, which
breaks the boundary/internal classification.

:func:`rename_webs` splits every virtual register into its *webs* --
maximal def/use groups connected through reaching definitions -- and gives
each web a distinct name (``t``, ``t.w1``, ``t.w2``, ...).  Renaming is
semantics-preserving and idempotent; it runs automatically at the front of
:func:`repro.core.analysis.analyze_thread`.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.ir.instruction import Instruction
from repro.ir.operands import Reg, VirtualReg
from repro.ir.program import Program

#: Pseudo def-site index for "value arrives live at program entry".
ENTRY = -1


class _UnionFind:
    def __init__(self) -> None:
        self.parent: Dict[int, int] = {}

    def find(self, x: int) -> int:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def _reaching_defs(
    program: Program, var: VirtualReg
) -> List[Set[int]]:
    """Per-instruction sets of ``var`` def sites reaching that point
    (``ENTRY`` stands for "possibly undefined / live-in at entry")."""
    n = len(program.instrs)
    preds: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for s in program.successors(i):
            preds[s].append(i)
    reach_in: List[Set[int]] = [set() for _ in range(n)]
    reach_in[0] = {ENTRY}
    out: List[Set[int]] = [set() for _ in range(n)]

    def transfer(i: int) -> Set[int]:
        if var in program.instrs[i].defs:
            return {i}
        return reach_in[i]

    worklist = list(range(n))
    in_list = [True] * n
    while worklist:
        i = worklist.pop()
        in_list[i] = False
        new_in = set(reach_in[i]) if i == 0 else set()
        if i == 0:
            new_in = {ENTRY}
        for p in preds[i]:
            new_in |= out[p]
        if i == 0:
            new_in.add(ENTRY)
        changed = new_in != reach_in[i]
        reach_in[i] = new_in
        new_out = transfer(i)
        if new_out != out[i] or changed:
            out[i] = new_out
            for s in program.successors(i):
                if not in_list[s]:
                    in_list[s] = True
                    worklist.append(s)
    return reach_in


def _name_and_replace(
    program: Program,
    var: VirtualReg,
    uf: _UnionFind,
    use_webs: Dict[int, int],
    def_sites: List[int],
    use_sites: List[int],
    taken: Set[str],
    replace: Dict[Tuple[int, int], VirtualReg],
) -> None:
    """Assign web names for one variable and record operand replacements.

    Shared tail of both :func:`rename_webs` implementations: given the
    union-find partition and per-use representatives, the naming depends
    only on the partition -- entry web (if used) first, then defs in
    program order.
    """
    roots: List[int] = []
    root_name: Dict[int, VirtualReg] = {}

    def name_for(root: int) -> VirtualReg:
        if root not in root_name:
            if not roots:
                root_name[root] = var  # first web keeps the name
            else:
                k = len(roots)
                candidate = f"{var.name}.w{k}"
                while candidate in taken:
                    k += 1
                    candidate = f"{var.name}.w{k}"
                taken.add(candidate)
                root_name[root] = VirtualReg(candidate)
            roots.append(root)
        return root_name[root]

    if any(uf.find(use_webs[u]) == uf.find(ENTRY) for u in use_sites):
        name_for(uf.find(ENTRY))
    for d in def_sites:
        name_for(uf.find(d))

    # Only the variable's own def/use sites can hold operands to
    # replace, so the scan skips the rest of the program.
    for i in sorted(set(def_sites) | set(use_sites)):
        instr = program.instrs[i]
        sig = instr.spec.signature
        for pos, (role, op) in enumerate(zip(sig, instr.operands)):
            if op != var:
                continue
            if role == "D":
                replace[(i, pos)] = name_for(uf.find(i))
            elif role == "U":
                replace[(i, pos)] = name_for(uf.find(use_webs[i]))


def rename_webs(program: Program) -> Program:
    """Return a copy of ``program`` with every web distinctly named.

    When the dense analysis kernels are the process default (see
    :mod:`repro.core.dense`), reaching definitions run as a bitmask
    fixpoint with all def/use sites gathered in one program sweep; the
    renamed program is identical either way (the web partition and the
    deterministic naming do not depend on how reaching sets are
    represented).
    """
    from repro.core.dense import analysis_is_dense

    if analysis_is_dense():
        return _rename_webs_dense(program)
    variables = sorted(program.virtual_regs(), key=str)
    n = len(program.instrs)
    # occurrence -> replacement, keyed by (instr index, operand position).
    replace: Dict[Tuple[int, int], VirtualReg] = {}
    taken = {v.name for v in variables}

    for var in variables:
        def_sites = [
            i for i, ins in enumerate(program.instrs) if var in ins.defs
        ]
        use_sites = [
            i for i, ins in enumerate(program.instrs) if var in ins.uses
        ]
        if len(def_sites) <= 1 and not use_sites:
            continue
        reach_in = _reaching_defs(program, var)
        uf = _UnionFind()
        for d in def_sites + [ENTRY]:
            uf.find(d)
        # use_webs holds a *representative member* of the use's web; roots
        # move as later unions merge webs, so resolve with uf.find() only
        # at naming time, never here.
        use_webs: Dict[int, int] = {}
        def_site_set = set(def_sites)
        for u in use_sites:
            reaching = [
                d for d in reach_in[u] if d == ENTRY or d in def_site_set
            ]
            defs_only = [d for d in reaching if d != ENTRY]
            if not defs_only:
                use_webs[u] = ENTRY
                continue
            first = defs_only[0]
            for d in defs_only[1:]:
                uf.union(first, d)
            if ENTRY in reaching:
                uf.union(first, ENTRY)
            use_webs[u] = first

        _name_and_replace(
            program, var, uf, use_webs, def_sites, use_sites, taken, replace
        )

    if not replace:
        return program.copy()
    return _apply_replacements(program, replace)


def _apply_replacements(
    program: Program, replace: Dict[Tuple[int, int], VirtualReg]
) -> Program:
    new_instrs: List[Instruction] = []
    for i, instr in enumerate(program.instrs):
        ops = list(instr.operands)
        changed = False
        for pos in range(len(ops)):
            key = (i, pos)
            if key in replace:
                ops[pos] = replace[key]
                changed = True
        new_instrs.append(instr.with_operands(ops) if changed else instr)
    return Program(name=program.name, instrs=new_instrs, labels=dict(program.labels))


def _reaching_defs_dense(
    n: int,
    succs: List[Tuple[int, ...]],
    preds: List[List[int]],
    is_def: List[bool],
) -> List[int]:
    """Bitmask reaching-definitions fixpoint for one variable.

    Bit ``i`` of a mask is "the def at instruction ``i`` reaches here";
    bit ``n`` is the :data:`ENTRY` pseudo-def.  Same worklist shape and
    the same unique least fixpoint as :func:`_reaching_defs`.
    """
    entry_bit = 1 << n
    reach_in = [0] * n
    out = [0] * n
    if n:
        reach_in[0] = entry_bit
        out[0] = 1 if is_def[0] else entry_bit
    worklist = list(range(n))
    in_list = [True] * n
    while worklist:
        i = worklist.pop()
        in_list[i] = False
        new_in = entry_bit if i == 0 else 0
        for p in preds[i]:
            new_in |= out[p]
        changed = new_in != reach_in[i]
        reach_in[i] = new_in
        new_out = (1 << i) if is_def[i] else new_in
        if new_out != out[i] or changed:
            out[i] = new_out
            for s in succs[i]:
                if not in_list[s]:
                    in_list[s] = True
                    worklist.append(s)
    return reach_in


def _rename_webs_dense(program: Program) -> Program:
    """Mask-based :func:`rename_webs`.

    One sweep gathers every variable's def and use sites (the reference
    path re-scans the program per variable, re-deriving operand tuples
    each time), and reaching definitions run over big-int masks.  The
    union-find partition -- and hence the renamed program -- is identical
    to the reference path's: all reaching defs of a use end up unioned,
    so the choice of representative does not matter, and web naming
    depends only on the partition.
    """
    variables = sorted(program.virtual_regs(), key=str)
    n = len(program.instrs)
    instrs = program.instrs
    defs_l = [ins.defs for ins in instrs]
    uses_l = [ins.uses for ins in instrs]
    succs = [program.successors(i) for i in range(n)]
    preds: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for s in succs[i]:
            preds[s].append(i)
    def_sites_of: Dict[Reg, List[int]] = {}
    use_sites_of: Dict[Reg, List[int]] = {}
    for i in range(n):
        for v in set(defs_l[i]):
            def_sites_of.setdefault(v, []).append(i)
        for v in set(uses_l[i]):
            use_sites_of.setdefault(v, []).append(i)

    replace: Dict[Tuple[int, int], VirtualReg] = {}
    taken = {v.name for v in variables}

    for var in variables:
        def_sites = def_sites_of.get(var, [])
        use_sites = use_sites_of.get(var, [])
        if len(def_sites) <= 1 and not use_sites:
            continue
        is_def = [False] * n
        for d in def_sites:
            is_def[d] = True
        reach_in = _reaching_defs_dense(n, succs, preds, is_def)
        entry_bit = 1 << n
        uf = _UnionFind()
        for d in def_sites + [ENTRY]:
            uf.find(d)
        use_webs: Dict[int, int] = {}
        for u in use_sites:
            m = reach_in[u]
            has_entry = bool(m & entry_bit)
            m &= entry_bit - 1  # def-site bits only
            if not m:
                use_webs[u] = ENTRY
                continue
            low = m & -m
            first = low.bit_length() - 1
            m ^= low
            while m:
                low = m & -m
                uf.union(first, low.bit_length() - 1)
                m ^= low
            if has_entry:
                uf.union(first, ENTRY)
            use_webs[u] = first

        _name_and_replace(
            program, var, uf, use_webs, def_sites, use_sites, taken, replace
        )

    if not replace:
        return program.copy()
    return _apply_replacements(program, replace)
