"""Structural program editing: batched insertion and edge splitting.

Splitting passes and spill-code insertion both need to drop instructions
into an existing program without corrupting labels or branch targets.  The
:class:`ProgramEditor` records edits against *original* instruction indices
and applies them all at once, so callers never reason about shifting
positions.

Two insertion modes exist because an insertion point may carry a label:

* ``ALL_PATHS`` -- the inserted code runs whenever control reaches the
  original instruction, whether by fallthrough or by jump.  Physically the
  code sits *after* the label.
* ``FALLTHROUGH_ONLY`` -- the inserted code runs only when control falls in
  from the previous instruction; jumps to the label skip it.  Physically
  the code sits *before* the label.

Edge insertion (:meth:`ProgramEditor.insert_on_edge`) places code on one
control-flow edge ``(i, j)``.  Fallthrough edges become a
``FALLTHROUGH_ONLY`` insertion at ``j``; branch edges whose target has no
other predecessor become an ``ALL_PATHS`` insertion at ``j``; remaining
branch edges are split with a trampoline block appended at the end of the
program (``Lnew: <code>; br Lj``) and the branch retargeted to ``Lnew``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Label
from repro.ir.program import Program


class InsertMode(enum.Enum):
    ALL_PATHS = "all_paths"
    FALLTHROUGH_ONLY = "fallthrough_only"


@dataclass
class _Insertion:
    index: int
    mode: InsertMode
    instrs: List[Instruction]
    seq: int  # submission order, to keep same-slot insertions stable


class ProgramEditor:
    """Collects edits against a program and applies them in one commit.

    All indices passed to the edit methods refer to the program as it was
    when the editor was created.  ``commit()`` returns a fresh
    :class:`Program`; the original is never mutated.
    """

    def __init__(self, program: Program):
        self.program = program
        self._insertions: List[_Insertion] = []
        self._trampolines: List[Tuple[int, List[Instruction], int]] = []
        self._seq = 0
        self._preds: Optional[List[List[int]]] = None

    # ------------------------------------------------------------------
    # Edit recording.
    # ------------------------------------------------------------------
    def insert_before(
        self,
        index: int,
        instrs: Sequence[Instruction],
        mode: InsertMode = InsertMode.ALL_PATHS,
    ) -> None:
        """Insert ``instrs`` immediately before original instruction ``index``."""
        if not 0 <= index < len(self.program.instrs):
            raise ValidationError(f"insert index {index} out of range")
        self._insertions.append(
            _Insertion(index, mode, list(instrs), self._next_seq())
        )

    def insert_after(self, index: int, instrs: Sequence[Instruction]) -> None:
        """Insert ``instrs`` on the fallthrough edge leaving ``index``.

        Valid only for instructions that fall through (not unconditional
        branches or halts); conditional branches get the code on their
        fallthrough path only.
        """
        instr = self.program.instrs[index]
        if instr.spec.is_halt or (
            instr.spec.is_branch and not instr.spec.is_cond
        ):
            raise ValidationError(
                f"instruction {index} ({instr.opcode}) never falls through"
            )
        if index + 1 >= len(self.program.instrs):
            raise ValidationError("cannot insert after the last instruction")
        self.insert_before(index + 1, instrs, InsertMode.FALLTHROUGH_ONLY)

    def insert_on_edge(
        self, src: int, dst: int, instrs: Sequence[Instruction]
    ) -> None:
        """Insert ``instrs`` on the control-flow edge ``src -> dst``."""
        succs = self.program.successors(src)
        if dst not in succs:
            raise ValidationError(f"no control-flow edge {src} -> {dst}")
        instr = self.program.instrs[src]
        is_fallthrough = dst == src + 1 and (
            not instr.spec.is_branch or instr.spec.is_cond
        )
        is_branch_target = instr.spec.is_branch and (
            self.program.resolve(instr.target.name) == dst
        )
        if is_fallthrough and is_branch_target:
            # Degenerate conditional branch to the next instruction: the
            # only safe placement is a trampoline on the taken edge plus a
            # fallthrough insertion; use a trampoline for the whole edge.
            self._add_trampoline(src, dst, instrs)
            return
        if is_fallthrough:
            self.insert_before(dst, instrs, InsertMode.FALLTHROUGH_ONLY)
            return
        # Branch edge.  If dst's only predecessor is src (and dst is not the
        # entry), code placed on all paths into dst is equivalent and
        # cheaper than a trampoline.
        if dst != 0 and self._predecessors(dst) == [src]:
            self.insert_before(dst, instrs, InsertMode.ALL_PATHS)
            return
        self._add_trampoline(src, dst, instrs)

    # ------------------------------------------------------------------
    # Commit.
    # ------------------------------------------------------------------
    def commit(self) -> Program:
        """Apply all recorded edits and return the new program."""
        old = self.program
        n = len(old.instrs)

        retarget: Dict[int, str] = {}
        tramp_blocks: List[Tuple[str, List[Instruction], str]] = []
        used_labels = set(old.labels)
        extra_labels: Dict[int, List[str]] = {}
        for src, instrs, dst in self._trampolines:
            names = old.labels_at(dst) + extra_labels.get(dst, [])
            if names:
                dst_label = names[0]
            else:
                dst_label = self._fresh(f"at.{dst}", used_labels)
                used_labels.add(dst_label)
                extra_labels.setdefault(dst, []).append(dst_label)
            new_label = self._fresh(f"edge.{src}.{dst}", used_labels)
            used_labels.add(new_label)
            tramp_blocks.append((new_label, list(instrs), dst_label))
            retarget[src] = new_label

        by_index: Dict[int, List[_Insertion]] = {}
        for ins in self._insertions:
            by_index.setdefault(ins.index, []).append(ins)
        for groups in by_index.values():
            groups.sort(key=lambda g: (g.mode is InsertMode.ALL_PATHS, g.seq))
            # FALLTHROUGH_ONLY first (physically before the label), then
            # ALL_PATHS, both in submission order.

        new_instrs: List[Instruction] = []
        new_labels: Dict[str, int] = {}
        for i in range(n):
            groups = by_index.get(i, [])
            for g in groups:
                if g.mode is InsertMode.FALLTHROUGH_ONLY:
                    new_instrs.extend(g.instrs)
            for name in old.labels_at(i) + extra_labels.get(i, []):
                new_labels[name] = len(new_instrs)
            for g in groups:
                if g.mode is InsertMode.ALL_PATHS:
                    new_instrs.extend(g.instrs)
            instr = old.instrs[i]
            if i in retarget:
                instr = instr.with_operands(
                    tuple(
                        Label(retarget[i]) if isinstance(op, Label) else op
                        for op in instr.operands
                    )
                )
            new_instrs.append(instr)

        for name, body, dst_label in tramp_blocks:
            new_labels[name] = len(new_instrs)
            new_instrs.extend(body)
            new_instrs.append(Instruction(Opcode.BR, (Label(dst_label),)))

        return Program(name=old.name, instrs=new_instrs, labels=new_labels)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _predecessors(self, index: int) -> List[int]:
        if self._preds is None:
            preds: List[List[int]] = [[] for _ in self.program.instrs]
            for i in range(len(self.program.instrs)):
                for s in self.program.successors(i):
                    preds[s].append(i)
            self._preds = preds
        return self._preds[index]

    def _add_trampoline(
        self, src: int, dst: int, instrs: Sequence[Instruction]
    ) -> None:
        self._trampolines.append((src, list(instrs), dst))

    @staticmethod
    def _fresh(stem: str, used: set) -> str:
        if stem not in used:
            return stem
        i = 1
        while f"{stem}.{i}" in used:
            i += 1
        return f"{stem}.{i}"


def insert_on_edge(
    program: Program, src: int, dst: int, instrs: Sequence[Instruction]
) -> Program:
    """One-shot convenience wrapper around :class:`ProgramEditor`."""
    editor = ProgramEditor(program)
    editor.insert_on_edge(src, dst, instrs)
    return editor.commit()
