"""Basic-block partitioning of npir programs.

Blocks are maximal straight-line instruction runs: a *leader* is the entry
instruction, any branch target, and any instruction following a branch.
Blocks carry their successor/predecessor block ids, so graph algorithms can
work at block granularity when instruction granularity is overkill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir.program import Program


@dataclass
class BasicBlock:
    """A half-open instruction range ``[start, end)`` of one program."""

    bid: int
    start: int
    end: int
    succs: Tuple[int, ...] = ()
    preds: Tuple[int, ...] = ()

    def __len__(self) -> int:
        return self.end - self.start

    def indices(self) -> range:
        return range(self.start, self.end)

    @property
    def last(self) -> int:
        return self.end - 1


def build_blocks(program: Program) -> List[BasicBlock]:
    """Partition ``program`` into basic blocks with wired-up edges."""
    n = len(program.instrs)
    leaders = {0}
    for i, instr in enumerate(program.instrs):
        if instr.spec.is_branch:
            leaders.add(program.resolve(instr.target.name))
            if i + 1 < n:
                leaders.add(i + 1)
        elif instr.spec.is_halt and i + 1 < n:
            leaders.add(i + 1)
    ordered = sorted(leaders)
    blocks: List[BasicBlock] = []
    block_of: Dict[int, int] = {}
    for bid, start in enumerate(ordered):
        end = ordered[bid + 1] if bid + 1 < len(ordered) else n
        blocks.append(BasicBlock(bid=bid, start=start, end=end))
        block_of[start] = bid

    preds: List[List[int]] = [[] for _ in blocks]
    for block in blocks:
        succ_ids = tuple(
            block_of[s] for s in program.successors(block.last)
        )
        block.succs = succ_ids
        for s in succ_ids:
            preds[s].append(block.bid)
    for block in blocks:
        block.preds = tuple(preds[block.bid])
    return blocks


def block_of_index(blocks: List[BasicBlock], index: int) -> BasicBlock:
    """Return the block containing instruction ``index`` (binary search)."""
    lo, hi = 0, len(blocks) - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        block = blocks[mid]
        if index < block.start:
            hi = mid - 1
        elif index >= block.end:
            lo = mid + 1
        else:
            return block
    raise IndexError(f"instruction {index} is in no block")
