"""Per-instruction liveness analysis and register-pressure metrics.

The classic backward dataflow::

    live_out[i] = union of live_in[s] over successors s of i
    live_in[i]  = (live_out[i] - defs[i]) | uses[i]

computed with an instruction-level worklist.  Programs here are small
(hundreds of instructions), so instruction granularity keeps every later
consumer simple: the interference builder, the NSR classifier and the
splitting passes all ask liveness questions at single program points.

Pressure metrics defined by the paper (section 5):

* ``RegPmax``     -- the maximum number of co-live ranges at any program
  point; the paper's lower bound ``MinR``.
* ``RegPCSBmax``  -- the maximum number of ranges live *across* any
  context-switch boundary; the paper's lower bound ``MinPR``.

"Live across" a CSB instruction means live after it completes and not
defined by it: ``live_out(csb) - defs(csb)``.  A ``load`` destination is
*not* live across its own CSB -- on the IXP the data lands in a transfer
register and only reaches the GPR when the thread resumes (footnote 3 of
the paper).

Two implementations compute the same facts: the reference set-based
worklist below, and the bitset kernel in :mod:`repro.core.dense`
(``live_in``/``live_out`` as big-int masks, frozensets materialized only
at this API boundary).  :func:`compute_liveness` is the single switch
point -- it consults the process-wide implementation registry
(``REPRO_ANALYSIS`` / ``--analysis-impl``) and the dense variant attaches
its mask payload as ``Liveness._dense``, which downstream passes key off
so one analysis never mixes implementations.  Results are bit-identical
either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.ir.operands import Reg
from repro.ir.program import Program


@dataclass
class Liveness:
    """Liveness facts for one program.

    Attributes:
        program: the analysed program (not copied; do not mutate while
            this object is in use).
        live_in: per-instruction set of registers live just before it.
        live_out: per-instruction set of registers live just after it.
        def_sets: per-instruction def sets, precomputed once so the hot
            ``live_across_csb`` query never rebuilds a frozenset.
    """

    program: Program
    live_in: List[FrozenSet[Reg]]
    live_out: List[FrozenSet[Reg]]
    def_sets: Optional[List[FrozenSet[Reg]]] = field(
        default=None, repr=False, compare=False
    )
    #: Bitmask payload attached by the dense kernels
    #: (:class:`repro.core.dense.DenseLiveness`); downstream passes key
    #: off its presence.  Never compared or printed.
    _dense: Optional[object] = field(default=None, repr=False, compare=False)

    def live_across_csb(self, index: int) -> FrozenSet[Reg]:
        """Registers live across the CSB instruction at ``index``."""
        instr = self.program.instrs[index]
        if not instr.is_csb:
            raise ValueError(f"instruction {index} ({instr.opcode}) is not a CSB")
        # getattr: objects unpickled from pre-def_sets disk caches lack
        # the attribute entirely.
        def_sets = getattr(self, "def_sets", None)
        if def_sets is None:
            def_sets = [frozenset(ins.defs) for ins in self.program.instrs]
            self.def_sets = def_sets
        return self.live_out[index] - def_sets[index]

    def entry_live(self) -> FrozenSet[Reg]:
        """Registers live at program entry (expected values from outside)."""
        return self.live_in[0] if self.live_in else frozenset()

    def csb_indices(self) -> List[int]:
        """Indices of all context-switch-boundary instructions."""
        return [
            i for i, instr in enumerate(self.program.instrs) if instr.is_csb
        ]

    def pressure_at(self, index: int) -> int:
        """Co-live register count at instruction ``index``: the larger of
        the point just before it and the point just after it.  Dead defs
        still occupy a register at the write, so they count after."""
        after = self.live_out[index] | frozenset(
            self.program.instrs[index].defs
        )
        return max(len(self.live_in[index]), len(after))

    def reg_p_max(self) -> int:
        """``RegPmax``: the paper's lower bound on ``R``."""
        if not self.program.instrs:
            return 0
        return max(self.pressure_at(i) for i in range(len(self.program.instrs)))

    def reg_p_csb_max(self) -> int:
        """``RegPCSBmax``: the paper's lower bound on ``PR``.

        Registers live at program entry also demand private registers
        (nothing has initialised them while other threads ran), so the
        entry point counts as one more boundary.
        """
        counts = [len(self.live_across_csb(i)) for i in self.csb_indices()]
        counts.append(len(self.entry_live()))
        return max(counts) if counts else 0


def compute_liveness(program: Program) -> Liveness:
    """Run the backward worklist analysis over ``program``.

    This is the implementation switch point: when the process default
    (see :mod:`repro.core.dense`) is ``dense``, the bitset fixpoint runs
    instead of the reference set-based worklist below.  Both produce
    bit-identical :class:`Liveness` facts.
    """
    from repro.core.dense import analysis_is_dense

    if analysis_is_dense():
        from repro.core.dense import compute_liveness_dense

        return compute_liveness_dense(program)
    n = len(program.instrs)
    defs: List[FrozenSet[Reg]] = []
    uses: List[FrozenSet[Reg]] = []
    for instr in program.instrs:
        defs.append(frozenset(instr.defs))
        uses.append(frozenset(instr.uses))

    preds: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for s in program.successors(i):
            preds[s].append(i)

    live_in: List[FrozenSet[Reg]] = [frozenset()] * n
    live_out: List[FrozenSet[Reg]] = [frozenset()] * n
    worklist = list(range(n))
    in_list = [True] * n
    while worklist:
        i = worklist.pop()
        in_list[i] = False
        out: FrozenSet[Reg] = frozenset()
        for s in program.successors(i):
            out |= live_in[s]
        new_in = (out - defs[i]) | uses[i]
        live_out[i] = out
        if new_in != live_in[i]:
            live_in[i] = new_in
            for p in preds[i]:
                if not in_list[p]:
                    in_list[p] = True
                    worklist.append(p)
    return Liveness(
        program=program, live_in=live_in, live_out=live_out, def_sets=defs
    )


def occupied_slots(liveness: Liveness, reg: Reg) -> FrozenSet[int]:
    """The *slots* a register occupies: every instruction index where it is
    live-in, plus every index where it is defined.

    Slots are the granularity at which live ranges are split: a piece of a
    live range is a subset of its slots, and a move is required on every
    control-flow edge between slots assigned to different pieces.
    """
    dense = getattr(liveness, "_dense", None)
    if dense is not None:
        return dense.occupied_frozen(reg)
    out: Set[int] = set()
    for i in range(len(liveness.program.instrs)):
        if reg in liveness.live_in[i] or reg in liveness.program.instrs[i].defs:
            out.add(i)
    return frozenset(out)


def co_live_pairs(liveness: Liveness) -> Set[Tuple[Reg, Reg]]:
    """All unordered register pairs co-live at some program point.

    For programs that pass validation (every live register is defined on
    every path) the relation is exactly: a def interferes with everything
    in its instruction's live-out set, plus the pairwise clique of
    registers live at program entry (those have no visible def).  A
    ``mov d, s`` where ``s`` dies at the move does *not* make ``d`` and
    ``s`` interfere, which is what lets live-range splitting reduce the
    chromatic number.
    """
    pairs: Set[Tuple[Reg, Reg]] = set()

    def add(a: Reg, b: Reg) -> None:
        if a != b:
            pairs.add((a, b) if str(a) <= str(b) else (b, a))

    entry = sorted(liveness.entry_live(), key=str)
    for x in range(len(entry)):
        for y in range(x + 1, len(entry)):
            add(entry[x], entry[y])
    for i, instr in enumerate(liveness.program.instrs):
        out = liveness.live_out[i]
        for d in instr.defs:
            for v in out:
                add(d, v)
        # Simultaneous writes (burst loads) need pairwise-distinct
        # registers even when some results are dead.
        defs = instr.defs
        for x in range(len(defs)):
            for y in range(x + 1, len(defs)):
                add(defs[x], defs[y])
    return pairs
