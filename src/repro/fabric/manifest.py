"""Content-addressed work manifests: a sweep serialized to a run directory.

A fabric run directory is the durable form of one ``sweep_map`` call::

    <run_dir>/
        manifest.json        # schema repro.fabric/1: item ids + metadata
        payload.pkl          # the actual items, pickled once by the planner
        items/<id>.json      # results spool: one atomic doc per finished item
        claims/<id>.claim    # in-flight ownership (see repro.fabric.claims)
        workers/<wid>.json   # per-worker completion summaries

Item identity is *content-addressed*: ``item_id`` is the sha256 of a
canonical JSON token of the item (``Program`` objects contribute their
:meth:`~repro.ir.program.Program.fingerprint`), the worker function's
``module:qualname``, and a code-version salt.  Two planners given the
same sweep therefore produce byte-identical manifests, resuming a run
directory is safe across processes and hosts, and a run dir produced by
stale code refuses to resume under new code (the salt changed).

The spool write is the same write-to-temp + ``os.replace`` discipline
as the analysis cache's disk layer: a reader (another worker, a merge,
a resume scan) can never observe a torn entry, only absent or complete.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro import __version__
from repro.errors import FabricError

SCHEMA_MANIFEST = "repro.fabric/1"
SCHEMA_ITEM = "repro.fabric-item/1"

#: Environment override folded into every item id.  Bump it (any value)
#: to invalidate run directories planned by semantically different code
#: without waiting for a version bump.
ENV_SALT = "REPRO_FABRIC_SALT"


def code_salt() -> str:
    """The code-version component of every item id."""
    extra = os.environ.get(ENV_SALT, "")
    return f"{SCHEMA_MANIFEST}|repro-{__version__}|{extra}"


def _canonical_token(value: Any) -> Any:
    """A JSON-stable token capturing the *identity* of one sweep item.

    ``Program`` objects (anything with a callable ``fingerprint``)
    contribute their content hash, scalars pass through (floats in hex
    so equality is bit-exact), containers recurse, callables contribute
    their import path, and anything else falls back to the sha256 of
    its pickle -- so arbitrary picklable items still get stable ids.
    """
    if value is None or isinstance(value, (str, int, bool)):
        return value
    if isinstance(value, float):
        return {"__float__": value.hex()}
    fingerprint = getattr(value, "fingerprint", None)
    if callable(fingerprint):
        try:
            return {"__program__": fingerprint()}
        except TypeError:
            pass  # fingerprint needing args: fall through to pickle
    if isinstance(value, (list, tuple)):
        return {"__seq__": [_canonical_token(v) for v in value]}
    if isinstance(value, dict):
        return {
            "__map__": [
                [_canonical_token(k), _canonical_token(v)]
                for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
            ]
        }
    if callable(value):
        return {
            "__fn__": f"{getattr(value, '__module__', '?')}:"
            f"{getattr(value, '__qualname__', repr(value))}"
        }
    try:
        blob = pickle.dumps(value, protocol=4)
    except Exception as exc:
        raise FabricError(
            f"fabric item is not content-addressable: {exc}"
        ) from exc
    return {"__pickle_sha256__": hashlib.sha256(blob).hexdigest()}


def fn_ref(fn: Callable[..., Any]) -> str:
    """``module:qualname`` of the worker function (manifest metadata)."""
    return (
        f"{getattr(fn, '__module__', '?')}:"
        f"{getattr(fn, '__qualname__', repr(fn))}"
    )


def item_id(fn: Callable[..., Any], item: Any, salt: Optional[str] = None) -> str:
    """sha256 hex id of one work item under one worker fn and code salt."""
    doc = {
        "salt": code_salt() if salt is None else salt,
        "fn": fn_ref(fn),
        "item": _canonical_token(item),
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _affinity_token(token: Any) -> List[Any]:
    """The content-bearing projection of an item token.

    Program fingerprints, kernel names, and other strings survive;
    numeric parameters (register budgets, thread counts, seeds) drop
    out; map *keys* drop out (they are structure, not content).
    """
    if isinstance(token, str):
        return [token]
    if isinstance(token, dict):
        if "__program__" in token:
            return [token["__program__"]]
        if "__fn__" in token:
            return [token["__fn__"]]
        if "__seq__" in token:
            return [s for t in token["__seq__"] for s in _affinity_token(t)]
        if "__map__" in token:
            return [
                s for _, v in token["__map__"] for s in _affinity_token(v)
            ]
    return []


def affinity_key(fn: Callable[..., Any], item: Any) -> str:
    """The placement key: same-analysis items share a key.

    The item's *content-bearing* components (program fingerprints,
    kernel names -- see :func:`_affinity_token`) hash to the affinity
    key, with numeric parameters projected out, so the same programs
    swept at different budgets or thread counts -- exactly the items
    whose shared-descent trajectories and analysis-cache entries
    overlap -- land on the same worker (``int(key, 16) % workers``).
    Items with no content-bearing component (plain numbers) hash their
    whole token: they spread over workers instead of piling onto one.
    """
    token = _canonical_token(item)
    content = _affinity_token(token)
    blob = json.dumps(
        content if content else token, sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def atomic_write_text(path: Path, text: str) -> None:
    """Write-to-temp + ``os.replace``: readers see absent or complete."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, str(path))
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class Manifest:
    """The planned form of one sweep: ordered, content-addressed items."""

    label: str
    fn: str  #: ``module:qualname`` of the worker function (metadata)
    salt: str
    items: List[Dict[str, Any]] = field(default_factory=list)
    #: sha256 over the ordered item ids + salt: the run's own identity.
    manifest_id: str = ""

    def compute_id(self) -> str:
        h = hashlib.sha256()
        h.update(self.salt.encode())
        for entry in self.items:
            h.update(b"\x1e")
            h.update(entry["id"].encode())
        return h.hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_MANIFEST,
            "label": self.label,
            "fn": self.fn,
            "salt": self.salt,
            "manifest_id": self.manifest_id,
            "items": self.items,
        }


def build_manifest(
    fn: Callable[..., Any],
    items: Sequence[Any],
    label: str = "sweep",
    salt: Optional[str] = None,
) -> Manifest:
    """Plan a sweep: content-address every item, no filesystem writes.

    The resulting :attr:`Manifest.manifest_id` is the run's identity --
    :func:`repro.fabric.sweep_run` derives the run-dir name from it, so
    re-planning the same sweep always lands in (and resumes) the same
    directory.
    """
    salt = code_salt() if salt is None else salt
    manifest = Manifest(label=label, fn=fn_ref(fn), salt=salt)
    seen: Dict[str, int] = {}
    for index, item in enumerate(items):
        iid = item_id(fn, item, salt=salt)
        if iid in seen:
            # Duplicate items share one result doc; the merge reads it
            # once per position.  Record the alias, spool once.
            manifest.items.append(
                {
                    "id": iid,
                    "index": index,
                    "affinity": manifest.items[seen[iid]]["affinity"],
                    "alias_of": seen[iid],
                }
            )
            continue
        seen[iid] = index
        manifest.items.append(
            {
                "id": iid,
                "index": index,
                "affinity": affinity_key(fn, item),
            }
        )
    manifest.manifest_id = manifest.compute_id()
    return manifest


class RunDir:
    """One fabric run directory: manifest + payload + spool + claims."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    # -- layout --------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def payload_path(self) -> Path:
        return self.root / "payload.pkl"

    @property
    def items_dir(self) -> Path:
        return self.root / "items"

    @property
    def claims_dir(self) -> Path:
        return self.root / "claims"

    @property
    def workers_dir(self) -> Path:
        return self.root / "workers"

    def item_path(self, item_id_: str) -> Path:
        return self.items_dir / f"{item_id_}.json"

    # -- planning ------------------------------------------------------
    @classmethod
    def plan(
        cls,
        root,
        fn: Callable[..., Any],
        items: Sequence[Any],
        label: str = "sweep",
        salt: Optional[str] = None,
        manifest: Optional[Manifest] = None,
    ) -> "RunDir":
        """Create (or verify and reuse) a run directory for this sweep.

        A fresh directory gets a manifest and a pickled payload.  An
        existing directory is *verified*: its manifest id must match the
        one this sweep would produce, otherwise :class:`FabricError` --
        resuming someone else's run (or a stale-code run) is an error,
        never silent corruption.  ``manifest`` short-circuits replanning
        when the caller already built one.
        """
        run = cls(root)
        if manifest is None:
            manifest = build_manifest(fn, items, label=label, salt=salt)

        if run.manifest_path.exists():
            existing = run.load_manifest()
            if existing.manifest_id != manifest.manifest_id:
                raise FabricError(
                    f"run dir {run.root} holds a different sweep "
                    f"(manifest {existing.manifest_id[:12]} != "
                    f"{manifest.manifest_id[:12]}); refusing to resume"
                )
            return run

        run.items_dir.mkdir(parents=True, exist_ok=True)
        run.claims_dir.mkdir(parents=True, exist_ok=True)
        run.workers_dir.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(list(items), protocol=4)
        fd, tmp = tempfile.mkstemp(dir=str(run.root), suffix=".pkl.tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(payload)
            os.replace(tmp, str(run.payload_path))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        atomic_write_text(
            run.manifest_path,
            json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n",
        )
        return run

    # -- loading -------------------------------------------------------
    def load_manifest(self) -> Manifest:
        try:
            doc = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError) as exc:
            raise FabricError(
                f"unreadable fabric manifest at {self.manifest_path}: {exc}"
            ) from exc
        if doc.get("schema") != SCHEMA_MANIFEST:
            raise FabricError(
                f"not a fabric manifest (schema {doc.get('schema')!r})"
            )
        return Manifest(
            label=doc["label"],
            fn=doc["fn"],
            salt=doc["salt"],
            items=list(doc["items"]),
            manifest_id=doc["manifest_id"],
        )

    def load_items(self) -> List[Any]:
        try:
            with open(self.payload_path, "rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise FabricError(
                f"unreadable fabric payload at {self.payload_path}: {exc}"
            ) from exc

    # -- spool ---------------------------------------------------------
    def write_result(
        self,
        item_id_: str,
        index: int,
        result: Any,
        worker: str,
        seconds: float,
        metrics: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Atomically spool one finished item.

        The result travels as base64 pickle (exact round-trip for any
        picklable value) plus, when it is JSON-clean, a readable
        ``json`` mirror for humans and shell tooling.
        """
        doc: Dict[str, Any] = {
            "schema": SCHEMA_ITEM,
            "id": item_id_,
            "index": index,
            "worker": worker,
            "seconds": seconds,
            "pickle": base64.b64encode(
                pickle.dumps(result, protocol=4)
            ).decode("ascii"),
        }
        try:
            mirror = json.dumps(result, sort_keys=True)
            if json.loads(mirror) == result:
                doc["json"] = result
        except (TypeError, ValueError):
            pass
        if metrics is not None:
            doc["metrics"] = metrics
        atomic_write_text(
            self.item_path(item_id_),
            json.dumps(doc, sort_keys=True) + "\n",
        )

    def read_result(self, item_id_: str) -> Dict[str, Any]:
        path = self.item_path(item_id_)
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise FabricError(
                f"unreadable spool entry {path.name}: {exc}"
            ) from exc
        if doc.get("schema") != SCHEMA_ITEM or "pickle" not in doc:
            raise FabricError(f"malformed spool entry {path.name}")
        return doc

    def result_value(self, doc: Dict[str, Any]) -> Any:
        try:
            return pickle.loads(base64.b64decode(doc["pickle"]))
        except Exception as exc:
            raise FabricError(
                f"corrupt spool payload for item {doc.get('id')}: {exc}"
            ) from exc

    def completed_ids(self) -> "set[str]":
        """Ids with a complete spool doc (atomic writes: no torn reads)."""
        if not self.items_dir.is_dir():
            return set()
        return {
            p.name[: -len(".json")]
            for p in self.items_dir.glob("*.json")
        }

    def missing(self, manifest: Optional[Manifest] = None) -> List[Dict[str, Any]]:
        """Manifest entries (non-alias) with no spool doc yet."""
        manifest = manifest or self.load_manifest()
        done = self.completed_ids()
        return [
            e
            for e in manifest.items
            if "alias_of" not in e and e["id"] not in done
        ]
