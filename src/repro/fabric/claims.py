"""File-backed claim protocol: exclusive item ownership across processes.

A worker takes an item by creating ``claims/<id>.claim`` with
``O_CREAT | O_EXCL`` -- the one filesystem primitive that is atomic on
every platform and over NFS-style shared directories, so N workers on
N hosts can share one run directory with zero double-claims in the
healthy case.  The claim body is a small JSON doc (worker id, pid,
host, monotonic-free wall timestamp) used only for staleness decisions
and status displays; exclusivity comes from the ``O_EXCL`` create, not
from the content.

Staleness has two triggers, checked in order:

* **dead pid** -- the claim names a pid on *this* host that no longer
  exists (``os.kill(pid, 0)`` raises); the worker crashed or was
  killed, its claim is immediately stale;
* **expired ttl** -- the claim is older than the run's ``ttl`` wall
  seconds; this is the cross-host path (pids are not checkable
  remotely) and the straggler path (a live-but-hung worker forfeits
  the item so the tail of the run cannot be held hostage).

Stealing a stale claim is unlink-then-recreate, and the recreate goes
through the same ``O_EXCL`` gate, so two stealers resolve to one
winner.  The deliberate race that remains -- a stale-but-alive worker
finishing *while* its item is re-executed -- is benign by construction:
``fn`` is deterministic and the spool write is atomic
(:func:`repro.fabric.manifest.atomic_write_text`), so both writers
produce the same document and last-replace wins.
"""

from __future__ import annotations

import errno
import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional

#: Default stale-claim expiry in wall seconds.  Generous relative to
#: the <1 s items the harness sweeps so only genuine stragglers forfeit,
#: small enough that a killed cross-host worker stalls a run briefly.
DEFAULT_TTL = 60.0

#: Grace period before an unreadable (mid-steal or damaged) claim file
#: is treated as stale by age of its mtime.
_CORRUPT_GRACE = 2.0


def claim_path(claims_dir, item_id: str) -> Path:
    return Path(claims_dir) / f"{item_id}.claim"


def _claim_doc(worker: str) -> Dict[str, Any]:
    return {
        "worker": worker,
        "pid": os.getpid(),
        "host": socket.gethostname(),
        "ts": time.time(),
    }


def try_claim(claims_dir, item_id: str, worker: str) -> bool:
    """Atomically claim an item; ``False`` if someone else holds it."""
    path = claim_path(claims_dir, item_id)
    try:
        fd = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
    except FileExistsError:
        return False
    except OSError as exc:  # pragma: no cover - exotic filesystems
        if exc.errno == errno.EEXIST:
            return False
        raise
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(_claim_doc(worker), fh)
    except OSError:
        # A claim we cannot write the body of is still *held* (the file
        # exists); leave it for the ttl path rather than racing here.
        pass
    return True


def release(claims_dir, item_id: str) -> None:
    """Drop a claim (after the spool write, or on worker error)."""
    try:
        os.unlink(str(claim_path(claims_dir, item_id)))
    except OSError:
        pass


def read_claim(claims_dir, item_id: str) -> Optional[Dict[str, Any]]:
    try:
        return json.loads(claim_path(claims_dir, item_id).read_text())
    except (OSError, ValueError):
        return None


def _pid_dead(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except (PermissionError, OSError):
        return False  # exists (or unknowable): not provably dead
    return False


def is_stale(claims_dir, item_id: str, ttl: float = DEFAULT_TTL) -> bool:
    """Whether an existing claim may be stolen (see module docstring)."""
    path = claim_path(claims_dir, item_id)
    doc = read_claim(claims_dir, item_id)
    if doc is None:
        # Unreadable: mid-steal, mid-write, or damaged.  Short grace on
        # the file's mtime, then treat as stale.
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:
            return False  # vanished: nothing to steal
        return age > _CORRUPT_GRACE
    if (
        doc.get("host") == socket.gethostname()
        and isinstance(doc.get("pid"), int)
        and _pid_dead(doc["pid"])
    ):
        return True
    ts = doc.get("ts")
    if isinstance(ts, (int, float)):
        return (time.time() - ts) > ttl
    return True  # a claim with no timestamp can never expire otherwise


def steal(claims_dir, item_id: str, worker: str, ttl: float = DEFAULT_TTL) -> bool:
    """Re-claim a stale item: unlink, then the normal ``O_EXCL`` gate.

    Returns ``True`` only when *this* caller ends up holding the fresh
    claim; concurrent stealers lose at the recreate and return False.
    """
    if not is_stale(claims_dir, item_id, ttl=ttl):
        return False
    release(claims_dir, item_id)
    return try_claim(claims_dir, item_id, worker)
