"""The fabric worker: claim, execute, spool, repeat; steal stragglers.

A worker is a *stateless* consumer of a run directory: everything it
needs (items, ordering, completion state) lives on disk, so any number
of workers -- in one process, many processes, or many hosts -- can run
the same loop concurrently and the run converges.

Scheduling is **fingerprint-affinity first**: every manifest entry
carries an affinity key (the hash of the item's content-bearing
components, numeric parameters projected out -- see
:func:`repro.fabric.manifest.affinity_key`), and worker ``k`` of ``n``
first drains the partition ``int(affinity, 16) % n == k`` in affinity
order.  Same-analysis items (the same programs at different register
budgets) therefore land consecutively on the same worker, where the
warm :class:`~repro.core.cache.AnalysisCache` and shared-descent
trajectories pay off -- the BUNDLEP-style conflict-free-region
placement from PAPERS.md applied to sweep items.

After its own partition a worker turns **work-stealing tail**: it scans
the remaining missing items (everyone's partitions), claims anything
unclaimed, and re-claims claims that have gone stale
(:func:`repro.fabric.claims.is_stale` -- dead pid or expired ttl), so
one hung or killed worker cannot hold the run's tail hostage.

Each executed item runs under its own scoped metrics registry and
capture emitter -- the same instrumented code paths a telemetry-enabled
serial run takes -- and the snapshot is spooled *with the result*, so
per-item telemetry survives worker death and merges identically on any
later host (labels ``{sweep,item,worker}``).
"""

from __future__ import annotations

import contextlib
import importlib
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import FabricError, InjectedFault
from repro.fabric import claims
from repro.fabric.manifest import Manifest, RunDir, atomic_write_text, fn_ref
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import deadline as deadline_mod
from repro.resilience import faults

SCHEMA_WORKER = "repro.fabric-worker/1"


def resolve_fn(ref: str) -> Callable[[Any], Any]:
    """Import the worker function named by a manifest's ``module:qualname``.

    Only module-level callables resolve (the same restriction
    ``sweep_map`` already imposes via pickling); anything with ``<`` in
    its qualname (lambdas, locals) is refused with a typed error.
    """
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname or "<" in qualname:
        raise FabricError(f"cannot import worker fn from ref {ref!r}")
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise FabricError(f"worker fn {ref!r} not importable: {exc}") from exc
    if not callable(obj):
        raise FabricError(f"worker fn {ref!r} is not callable")
    return obj


@dataclass
class WorkerSummary:
    """What one worker pass did (also spooled to ``workers/<wid>.json``)."""

    worker: str
    shard: int
    shards: int
    executed: List[int] = field(default_factory=list)  #: item indices
    stolen: List[int] = field(default_factory=list)  #: subset re-claimed
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": SCHEMA_WORKER,
            "worker": self.worker,
            "pid": os.getpid(),
            "shard": self.shard,
            "shards": self.shards,
            "executed": self.executed,
            "stolen": self.stolen,
            "seconds": self.seconds,
        }


def _affinity_order(entries: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    return sorted(entries, key=lambda e: (e["affinity"], e["index"]))


def _execute(
    run: RunDir,
    fn: Callable[[Any], Any],
    entry: Dict[str, Any],
    item: Any,
    worker: str,
    telemetry: bool = False,
) -> None:
    """Run one claimed item and spool result + telemetry atomically.

    The ``fabric.item`` fault site sits between claim and execution;
    mode ``crash`` raises :class:`InjectedFault` *without releasing the
    claim* -- modelling a worker killed mid-item, whose claim must be
    reaped by the staleness machinery, not politely returned.

    Every item runs under its own scoped metrics registry, so the
    spooled snapshot always carries the ``fabric.item.executed``
    counter the resume gates count.  The capture *emitter* -- which
    turns on every instrumented code path inside ``fn`` -- only wraps
    the call when the driving parent had telemetry enabled
    (``telemetry``), the same zero-cost-when-disabled rule
    ``sweep_map``'s worker wrapper follows.
    """
    spec = faults.fire("fabric.item", item=entry["index"], worker=worker)
    if spec is not None:
        raise InjectedFault(
            f"injected fabric worker crash at item {entry['index']}"
        )
    t0 = time.perf_counter()
    try:
        with obs_metrics.scoped() as reg:
            with obs.capture() if telemetry else contextlib.nullcontext():
                reg.counter("fabric.item.executed").inc()
                result = fn(item)
                snap = reg.snapshot()
    except BaseException:
        # A genuine fn error: hand the item back so the error surfaces
        # on whoever (including a resume) runs it next -- a dead claim
        # would only delay the same failure behind a ttl.
        claims.release(run.claims_dir, entry["id"])
        raise
    run.write_result(
        entry["id"],
        entry["index"],
        result,
        worker=worker,
        seconds=time.perf_counter() - t0,
        metrics=snap,
    )
    claims.release(run.claims_dir, entry["id"])


def run_worker(
    run_dir,
    fn: Optional[Callable[[Any], Any]] = None,
    shard: int = 0,
    shards: int = 1,
    worker: Optional[str] = None,
    ttl: float = claims.DEFAULT_TTL,
    deadline: Optional[deadline_mod.Deadline] = None,
    poll: float = 0.05,
    wait: bool = True,
    telemetry: Optional[bool] = None,
) -> WorkerSummary:
    """Drain a run directory as worker ``shard`` of ``shards``.

    Returns when every manifest item has a spool entry -- or, with
    ``wait=False``, as soon as the only remaining items are held by
    *fresh* claims (another live worker is on them).  ``deadline``
    bounds the whole pass (checked between items);  ``fn=None``
    resolves the worker function from the manifest's ``fn`` ref.
    ``telemetry`` forces per-item event capture on or off; the default
    follows this process's live emitter (a child process inherits the
    parent's choice through :func:`repro.fabric.runner.execute`).
    """
    if telemetry is None:
        telemetry = obs.get_emitter().enabled
    run = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)
    manifest = run.load_manifest()
    if fn is None:
        fn = resolve_fn(manifest.fn)
    elif fn_ref(fn) != manifest.fn:
        raise FabricError(
            f"worker fn {fn_ref(fn)} does not match manifest fn "
            f"{manifest.fn}"
        )
    items = run.load_items()
    wid = worker if worker is not None else f"w{shard}.{os.getpid()}"
    summary = WorkerSummary(worker=wid, shard=shard, shards=shards)
    t_start = time.perf_counter()
    shards = max(1, shards)

    def checkpoint() -> None:
        summary.seconds = time.perf_counter() - t_start
        atomic_write_text(
            run.workers_dir / f"{wid}.json",
            json.dumps(summary.to_dict(), sort_keys=True) + "\n",
        )

    def note(event: str, entry: Dict[str, Any]) -> None:
        em = obs.get_emitter()
        if em.enabled:
            em.emit(event, worker=wid, item=entry["index"], id=entry["id"])
            obs_metrics.registry().counter(event).inc()

    def take(entry: Dict[str, Any], stolen: bool = False) -> bool:
        """Execute one claimed entry; the claim is already held."""
        if run.item_path(entry["id"]).exists():
            # Completed between the missing-scan and our claim (or by a
            # stale-but-alive straggler); nothing to do.
            claims.release(run.claims_dir, entry["id"])
            return False
        _execute(
            run, fn, entry, items[entry["index"]], wid, telemetry=telemetry
        )
        summary.executed.append(entry["index"])
        if stolen:
            summary.stolen.append(entry["index"])
            note("fabric.steal", entry)
        checkpoint()
        return True

    entries = [e for e in manifest.items if "alias_of" not in e]
    own = _affinity_order(
        [e for e in entries if int(e["affinity"], 16) % shards == shard]
    )
    rest = _affinity_order(
        [e for e in entries if int(e["affinity"], 16) % shards != shard]
    )

    # Pass 1: own partition, then everyone else's leftovers -- plain
    # O_EXCL claims only, no stealing yet.
    for entry in own + rest:
        deadline_mod.check(deadline, "fabric.worker")
        if run.item_path(entry["id"]).exists():
            continue
        if claims.try_claim(run.claims_dir, entry["id"], wid):
            take(entry)

    # Tail: whatever is still missing is either in flight on a live
    # worker (fresh claim -- skip, or wait) or abandoned (no claim /
    # stale claim -- take it).
    while True:
        deadline_mod.check(deadline, "fabric.worker")
        missing = run.missing(manifest)
        if not missing:
            break
        progressed = False
        for entry in _affinity_order(missing):
            deadline_mod.check(deadline, "fabric.worker")
            if run.item_path(entry["id"]).exists():
                progressed = True
                continue
            if claims.try_claim(run.claims_dir, entry["id"], wid):
                progressed = take(entry) or progressed
            elif claims.steal(run.claims_dir, entry["id"], wid, ttl=ttl):
                progressed = take(entry, stolen=True) or progressed
        if not progressed:
            if not wait:
                break
            time.sleep(poll)

    checkpoint()
    return summary
