"""Drive a fabric run: spawn workers, finish stragglers, merge the spool.

:func:`execute` is the local-host driver ``repro fabric run`` and the
``sweep_map`` backend share: it launches N worker processes over one
run directory, bounds the whole run with a
:class:`~repro.resilience.deadline.Deadline`, and -- after the workers
join -- finishes anything still missing *in-process* (claims left by
dead children are stale by pid and get stolen immediately).  Other
hosts can point their own ``repro fabric run`` at the same shared
directory; nothing here assumes it is the only driver.

:func:`merge_results` folds the spool back into submission order --
positionally identical to ``[fn(x) for x in items]`` -- and, when the
parent has telemetry enabled, merges every item's spooled metrics
snapshot into the live registry labeled ``{sweep,item,worker}``, the
fabric analogue of ``sweep_map``'s worker-snapshot merge.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeadlineExceeded, FabricError
from repro.fabric import claims
from repro.fabric.manifest import Manifest, RunDir, fn_ref
from repro.fabric.worker import run_worker
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience.deadline import Deadline

#: Poll interval while the parent watches its worker processes.  Small:
#: on short sweeps the last join's poll granularity is pure added
#: wall-clock against the ephemeral pool this replaces.
_JOIN_POLL = 0.005


def _worker_entry(
    run_dir: str,
    shard: int,
    shards: int,
    ttl: float,
    telemetry: bool = False,
) -> None:
    """Child-process entry point (module-level, picklable)."""
    run_worker(
        run_dir, shard=shard, shards=shards, ttl=ttl, wait=False,
        telemetry=telemetry,
    )


def execute(
    run_dir,
    fn: Optional[Callable[[Any], Any]] = None,
    workers: int = 1,
    ttl: float = claims.DEFAULT_TTL,
    timeout: Optional[float] = None,
) -> None:
    """Run workers over a planned directory until every item is spooled.

    ``workers <= 1`` runs the worker loop in-process (no fork -- the
    mode fault-injection and the tier-1 tests exercise).  Otherwise N
    child processes each take a shard; the parent polls under the
    ``timeout`` deadline, then sweeps up anything the children left
    behind.  Raises :class:`DeadlineExceeded` on timeout and
    :class:`FabricError` if items remain missing with nothing claimable
    (e.g. a live foreign worker holds a fresh claim).
    """
    run = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)
    deadline = Deadline.after(timeout) if timeout is not None else None
    em = obs.get_emitter()
    if em.enabled:
        em.emit("fabric.run", dir=str(run.root), workers=workers)
        obs_metrics.registry().counter("fabric.run").inc()

    # Never fork more workers than there are unclaimed items: each
    # process is real fork/teardown wall-clock, and a worker with an
    # empty queue contributes nothing but that overhead.
    if workers > 1:
        workers = min(workers, max(1, len(run.missing())))

    if workers <= 1:
        run_worker(
            run, fn=fn, shard=0, shards=1, ttl=ttl, deadline=deadline,
            wait=False,
        )
    else:
        import multiprocessing as mp

        procs = [
            mp.Process(
                target=_worker_entry,
                args=(str(run.root), shard, workers, ttl, em.enabled),
                daemon=True,
            )
            for shard in range(workers)
        ]
        for p in procs:
            p.start()
        try:
            while any(p.is_alive() for p in procs):
                if deadline is not None and deadline.remaining() <= 0:
                    for p in procs:
                        p.terminate()
                    for p in procs:
                        p.join(timeout=1.0)
                    raise DeadlineExceeded(
                        f"fabric run exceeded {timeout}s", phase="fabric.run"
                    )
                time.sleep(_JOIN_POLL)
        finally:
            for p in procs:
                if p.is_alive():  # pragma: no cover - deadline path only
                    p.terminate()
                p.join(timeout=1.0)
        # Children exited (cleanly or killed): finish any leftovers
        # here.  Dead children's claims are stale by pid, so the
        # in-process worker steals them without waiting out the ttl.
        run_worker(
            run, fn=fn, shard=0, shards=1, ttl=ttl, deadline=deadline,
            wait=False,
        )

    manifest = run.load_manifest()
    missing = run.missing(manifest)
    if missing:
        holders = sorted(e["index"] for e in missing)
        raise FabricError(
            f"fabric run at {run.root} still missing {len(missing)} "
            f"item(s) {holders[:8]}{'...' if len(holders) > 8 else ''} "
            f"(held by live foreign workers, or workers kept failing)"
        )


def partial_results(run_dir) -> "tuple[List[Any], List[bool]]":
    """Whatever the spool already holds, in submission order.

    Returns ``(results, done)`` with ``None`` holes; the ``sweep_map``
    fallback path uses this to avoid re-executing items that finished
    before a fabric-infrastructure failure.  Unreadable entries simply
    stay missing.
    """
    run = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)
    manifest = run.load_manifest()
    n = len(manifest.items)
    results: List[Any] = [None] * n
    done = [False] * n
    docs: Dict[str, Any] = {}
    for entry in manifest.items:
        if "alias_of" in entry:
            continue
        try:
            doc = run.read_result(entry["id"])
            docs[entry["id"]] = doc
            results[entry["index"]] = run.result_value(doc)
            done[entry["index"]] = True
        except FabricError:
            continue
    for entry in manifest.items:  # aliases mirror their targets
        if "alias_of" in entry and done[entry["alias_of"]]:
            results[entry["index"]] = results[entry["alias_of"]]
            done[entry["index"]] = True
    return results, done


def merge_results(run_dir, strict: bool = True) -> List[Any]:
    """Fold the spool into submission-ordered results.

    With ``strict`` (the default) a missing or unreadable entry raises
    :class:`FabricError` naming the holes -- a merge must never silently
    shorten a sweep.  When the parent's telemetry is enabled, each
    item's spooled metrics snapshot merges into the live registry
    labeled ``{sweep=<label>, item=<index>, worker=<wid>}`` (call merge
    once per registry, or counters double).
    """
    run = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)
    manifest = run.load_manifest()
    telemetry = obs.get_emitter().enabled
    results: List[Any] = [None] * len(manifest.items)
    done = [False] * len(manifest.items)
    holes: List[int] = []
    for entry in manifest.items:
        if "alias_of" in entry:
            continue
        try:
            doc = run.read_result(entry["id"])
        except FabricError:
            holes.append(entry["index"])
            continue
        results[entry["index"]] = run.result_value(doc)
        done[entry["index"]] = True
        if telemetry and isinstance(doc.get("metrics"), dict):
            obs_metrics.registry().merge_snapshot(
                doc["metrics"],
                labels={
                    "sweep": manifest.label,
                    "item": entry["index"],
                    "worker": doc.get("worker", "?"),
                },
            )
    for entry in manifest.items:
        if "alias_of" not in entry:
            continue
        if done[entry["alias_of"]]:
            results[entry["index"]] = results[entry["alias_of"]]
            done[entry["index"]] = True
        else:
            holes.append(entry["index"])
    if holes and strict:
        holes.sort()
        raise FabricError(
            f"fabric merge at {run.root}: {len(holes)} item(s) missing "
            f"from the spool: {holes[:8]}{'...' if len(holes) > 8 else ''}"
        )
    return results


def status(run_dir) -> Dict[str, Any]:
    """One JSON-ready snapshot of a run directory's progress."""
    run = run_dir if isinstance(run_dir, RunDir) else RunDir(run_dir)
    manifest = run.load_manifest()
    completed = run.completed_ids()
    entries = [e for e in manifest.items if "alias_of" not in e]
    claimed = fresh = stale = 0
    for entry in entries:
        if entry["id"] in completed:
            continue
        if claims.claim_path(run.claims_dir, entry["id"]).exists():
            claimed += 1
            if claims.is_stale(run.claims_dir, entry["id"]):
                stale += 1
            else:
                fresh += 1
    workers: List[Dict[str, Any]] = []
    if run.workers_dir.is_dir():
        for path in sorted(run.workers_dir.glob("*.json")):
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            workers.append(
                {
                    "worker": doc.get("worker", path.stem),
                    "executed": len(doc.get("executed", [])),
                    "stolen": len(doc.get("stolen", [])),
                    "seconds": doc.get("seconds"),
                }
            )
    done = sum(1 for e in entries if e["id"] in completed)
    return {
        "dir": str(run.root),
        "label": manifest.label,
        "manifest_id": manifest.manifest_id,
        "fn": manifest.fn,
        "total": len(manifest.items),
        "unique": len(entries),
        "done": done,
        "missing": len(entries) - done,
        "claimed": claimed,
        "claimed_fresh": fresh,
        "claimed_stale": stale,
        "workers": workers,
    }


def sweep_run(
    fn: Callable[[Any], Any],
    items: List[Any],
    label: str,
    root,
    workers: int,
    ttl: float = claims.DEFAULT_TTL,
    timeout: Optional[float] = None,
) -> "tuple[RunDir, List[Any]]":
    """Plan-or-resume under ``root``, execute, merge: the sweep backend.

    The run directory is ``<root>/<label>-<manifest_id[:12]>`` --
    content-addressed, so re-invoking the same sweep resumes its own
    directory and a changed sweep gets a fresh one, no flags needed.
    """
    from pathlib import Path

    from repro.fabric.manifest import build_manifest

    manifest = build_manifest(fn, items, label=label)
    run_root = Path(root) / f"{label}-{manifest.manifest_id[:12]}"
    run = RunDir.plan(run_root, fn, items, label=label, manifest=manifest)
    execute(run, fn=fn, workers=workers, ttl=ttl, timeout=timeout)
    return run, merge_results(run)
