"""repro.fabric: a sharded, resumable, multi-worker sweep fabric.

The fabric turns any ``sweep_map`` call into a *durable* run: the sweep
is planned into a content-addressed run directory
(:mod:`~repro.fabric.manifest`), N workers -- processes here, or
``repro fabric run`` invocations on other hosts sharing the directory
-- pull items through a file-backed claim protocol
(:mod:`~repro.fabric.claims`) with fingerprint-affinity scheduling and
a work-stealing tail (:mod:`~repro.fabric.worker`), and the results
spool merges back into submission order, byte-identical to a serial
run (:mod:`~repro.fabric.runner`).  Crashes, kills, and reboots cost
only the items without spool entries: re-invoking on the same
directory executes exactly the complement.

Opting in
---------

* ``sweep_map(fn, items, jobs="fabric")`` routes one sweep through the
  fabric (run dir under the configured root, or a temp dir);
* :func:`set_fabric` / the ``REPRO_FABRIC_DIR`` environment variable /
  the CLI's ``--fabric DIR`` make the root durable and route *every*
  multi-job sweep underneath it;
* ``repro fabric run|status|merge|resume`` drives a run directory
  directly (see ``docs/FABRIC.md``).
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional, Tuple

from repro.fabric.claims import DEFAULT_TTL
from repro.fabric.manifest import (
    Manifest,
    RunDir,
    affinity_key,
    build_manifest,
    code_salt,
    item_id,
)
from repro.fabric.runner import (
    execute,
    merge_results,
    partial_results,
    status,
    sweep_run,
)
from repro.fabric.worker import WorkerSummary, resolve_fn, run_worker

#: Environment variable naming the durable fabric root directory.
ENV_DIR = "REPRO_FABRIC_DIR"

_root: Optional[str] = None
_workers: Optional[int] = None


def set_fabric(
    root: Optional[str], workers: Optional[int] = None
) -> None:
    """Set (or with ``root=None`` clear) the process-wide fabric root.

    While a root is set, every ``sweep_map`` call with ``jobs > 1``
    runs through the fabric under it -- this is what the CLI's
    ``--fabric DIR`` flag does.  ``workers`` overrides the worker count
    (defaults to the sweep's own ``jobs``).
    """
    global _root, _workers
    _root = str(root) if root is not None else None
    _workers = workers


def configured_root() -> Optional[str]:
    """The durable fabric root: :func:`set_fabric` wins over the env."""
    if _root is not None:
        return _root
    return os.environ.get(ENV_DIR) or None


def resolve(jobs) -> Optional[Tuple[str, int]]:
    """Decide whether (and how) a sweep runs on the fabric.

    Returns ``(root, workers)`` when fabric is engaged for ``jobs`` --
    either the explicit ``jobs == "fabric"`` opt-in or a configured
    root combined with a parallel job count -- and ``None`` for plain
    serial/pool execution.  With no durable root configured, the
    explicit opt-in falls back to a fresh temp directory (functional
    but not resumable across invocations).
    """
    root = configured_root()
    if jobs == "fabric":
        from repro.harness.sweep import default_jobs

        workers = _workers if _workers else default_jobs()
        if root is None:
            root = tempfile.mkdtemp(prefix="repro-fabric-")
        return root, workers
    if root is not None and isinstance(jobs, int) and jobs > 1:
        return root, (_workers if _workers else jobs)
    return None


__all__ = [
    "DEFAULT_TTL",
    "ENV_DIR",
    "Manifest",
    "RunDir",
    "WorkerSummary",
    "affinity_key",
    "build_manifest",
    "code_salt",
    "configured_root",
    "execute",
    "item_id",
    "merge_results",
    "partial_results",
    "resolve",
    "resolve_fn",
    "run_worker",
    "set_fabric",
    "status",
    "sweep_run",
]
