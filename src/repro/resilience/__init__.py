"""Resilience subsystem: fault injection, deadlines, and degradation.

Four pillars (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.resilience.faults` -- deterministic, seedable,
  context-manager-scoped fault injection behind hook points threaded
  through the cache, sweep, pipeline, and both simulator engines;
* :mod:`repro.resilience.deadline` -- cooperative wall-clock budgets
  for the allocator pipeline (the simulators use cycle watchdogs);
* :mod:`repro.resilience.guard` -- the unified degradation ladder and
  bounded transient retry;
* the independent verifier lives with the allocator it checks, in
  :mod:`repro.core.verify`, and the chaos harness that sweeps fault
  scenarios in :mod:`repro.harness.chaos`.
"""

from repro.resilience.deadline import Deadline
from repro.resilience.faults import (
    FaultPlan,
    FaultRecord,
    FaultSpec,
    inject,
    suspended,
)
from repro.resilience.guard import (
    LADDER,
    Degradation,
    Rung,
    backoff_delays,
    clear_degradations,
    degradations,
    record_degradation,
    retry_transient,
    watching,
)

__all__ = [
    "Deadline",
    "Degradation",
    "FaultPlan",
    "FaultRecord",
    "FaultSpec",
    "LADDER",
    "Rung",
    "backoff_delays",
    "clear_degradations",
    "degradations",
    "inject",
    "record_degradation",
    "retry_transient",
    "suspended",
    "watching",
]
