"""The unified degradation ladder and bounded retry policy.

Before this module every fallback in the tree was ad hoc: the sweep
warned and reran serially, the engine selector warned and picked the
reference interpreter, the disk cache silently swallowed errors, the
spill fallback quietly retried.  The ladder unifies them under one
documented policy object: every rung names its trigger and its
degraded mode, every *use* of a rung flows through
:func:`record_degradation`, which appends a typed :class:`Degradation`
record to a process-global log and emits a ``resilience.degrade``
telemetry event -- so a test (or the chaos harness) can assert that a
masked fault really was masked *by policy* and not by accident.

The ladder (top rung first -- each row falls back toward the slow,
simple, always-correct configuration):

======================================  =================================
rung                                    degraded mode
======================================  =================================
``analysis.dense_to_reference``         re-analyze with the set-based
                                        reference kernels
``engine.fast_to_reference``            run on the reference interpreter
``sweep.parallel_to_serial``            finish the sweep's missing
                                        points serially in-process
``cache.disk_to_memory``                disable the on-disk cache layer,
                                        keep the in-memory LRU
``alloc.greedy_to_spill``               pre-spill the hungriest thread
                                        and retry the greedy allocation
``service.store_to_memory``             serve the result store from the
                                        in-memory overlay only
``service.engine_to_reference``         run service simulation verdicts
                                        on the reference interpreter
``service.verify_to_skip``              skip service-side verification,
                                        flag the response envelope
======================================  =================================

Transient failures that do not merit a rung change (an injected
``pipeline.analyze`` blip, a flaky disk) go through
:func:`retry_transient`: bounded attempts with exponential backoff,
each retry tagged with a ``resilience.retry`` event.
"""

from __future__ import annotations

import random
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Type,
    TypeVar,
)

from repro.errors import TransientError
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics

T = TypeVar("T")


@dataclass(frozen=True)
class Rung:
    """One documented rung of the degradation ladder."""

    name: str
    trigger: str
    action: str


#: The unified ladder.  ``record_degradation`` only accepts these names,
#: so an undocumented fallback cannot ship silently; the table in
#: ``docs/ROBUSTNESS.md`` is generated from this tuple's fields.
LADDER: Tuple[Rung, ...] = (
    Rung(
        name="analysis.dense_to_reference",
        trigger="the dense bitset analysis kernels raise on a program",
        action="re-analyze that program with the set-based reference "
        "implementation (bit-identical results by construction)",
    ),
    Rung(
        name="engine.fast_to_reference",
        trigger="the process-default fast engine meets a reference-only "
        "feature (trace, timeline, paranoid assignment)",
        action="run that machine on the reference interpreter",
    ),
    Rung(
        name="engine.batch_to_reference",
        trigger="the process-default batch engine meets a reference-only "
        "feature (trace, timeline, paranoid assignment)",
        action="run that machine on the reference interpreter",
    ),
    Rung(
        name="sweep.parallel_to_serial",
        trigger="the sweep's process pool cannot be built, breaks "
        "mid-flight, or times out",
        action="run the sweep points that have no result yet serially "
        "in-process, preserving order",
    ),
    Rung(
        name="cache.disk_to_memory",
        trigger="the on-disk analysis cache keeps failing "
        "(unreadable/corrupt entries or I/O errors)",
        action="disable the disk layer for this cache, keep the "
        "in-memory LRU",
    ),
    Rung(
        name="alloc.greedy_to_spill",
        trigger="the register budget is infeasible even at the "
        "threads' lower bounds",
        action="pre-spill the hungriest thread (Chaitin-style) and "
        "retry the cross-thread allocation",
    ),
    Rung(
        name="service.store_to_memory",
        trigger="the service's content-addressed result store keeps "
        "failing (unwritable directory, corrupt entries)",
        action="serve results from the in-memory overlay only; "
        "idempotent replay across restarts is lost until the breaker "
        "half-opens and a probe write succeeds",
    ),
    Rung(
        name="service.engine_to_reference",
        trigger="the requested simulation engine keeps failing on "
        "service verdict runs",
        action="run service simulation verdicts on the reference "
        "interpreter and flag the response envelope",
    ),
    Rung(
        name="service.verify_to_skip",
        trigger="the independent allocation verifier keeps crashing "
        "(not: rejecting) on service requests",
        action="skip verification and flag the response envelope "
        "(`verify:skipped`); allocations still ship, unverified",
    ),
)

_RUNG_NAMES = frozenset(r.name for r in LADDER)


@dataclass(frozen=True)
class Degradation:
    """One recorded use of a ladder rung."""

    rung: str
    reason: str
    seq: int
    context: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rung": self.rung,
            "reason": self.reason,
            "seq": self.seq,
            **dict(self.context),
        }


_log: List[Degradation] = []


def record_degradation(rung: str, reason: str, **context: Any) -> Degradation:
    """Record that ``rung`` was taken; returns the typed record.

    Appends to the process-global log (see :func:`degradations`) and
    emits a ``resilience.degrade`` event plus a ``site=<rung>``-labeled
    metric counter when telemetry is active.  ``rung`` must name a :data:`LADDER` row.
    """
    if rung not in _RUNG_NAMES:
        raise ValueError(
            f"unknown degradation rung {rung!r}; known: "
            f"{', '.join(sorted(_RUNG_NAMES))}"
        )
    record = Degradation(
        rung=rung,
        reason=reason,
        seq=len(_log),
        context=tuple(sorted(context.items())),
    )
    _log.append(record)
    em = obs.get_emitter()
    if em.enabled:
        em.emit("resilience.degrade", **record.to_dict())
        reg = obs_metrics.registry()
        reg.counter("resilience.degrade").inc()
        reg.counter("resilience.degrade", site=rung).inc()
    return record


def degradations() -> Tuple[Degradation, ...]:
    """Every degradation recorded by this process, oldest first."""
    return tuple(_log)


def clear_degradations() -> None:
    """Drop the log (tests and the chaos harness scope runs with this)."""
    _log.clear()


@contextmanager
def watching() -> Iterator[List[Degradation]]:
    """Yield a list that accumulates the degradations of the block."""
    mark = len(_log)
    new: List[Degradation] = []
    try:
        yield new
    finally:
        new.extend(_log[mark:])


def backoff_delays(
    backoff: float,
    attempts: int,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
    label: str = "work",
) -> List[float]:
    """The retry delay schedule: exponential backoff, optionally jittered.

    Delay ``k`` (0-based) is ``backoff * 2**k``, scaled by a factor
    drawn uniformly from ``[1 - jitter, 1]`` when ``jitter > 0``.  The
    scale-*down* direction means a jittered schedule never waits longer
    than the deterministic one, only decorrelates callers that would
    otherwise retry in lockstep against a shared resource (the service's
    admission queue, the fabric's claim files).

    Jitter is deterministic and seedable: pass an explicit
    ``random.Random`` to control the stream, or let the default derive a
    stable per-``label`` seed (``crc32(label)``) -- two processes
    retrying different labels decorrelate, while one label replays the
    same schedule run over run.  ``jitter=0.0`` (the default everywhere)
    draws nothing and returns the exact historical schedule.
    """
    if not 0.0 <= jitter < 1.0:
        raise ValueError(f"jitter must be in [0, 1), got {jitter}")
    delays = [backoff * (2 ** k) for k in range(max(attempts - 1, 0))]
    if jitter > 0.0:
        if rng is None:
            rng = random.Random(zlib.crc32(label.encode()))
        delays = [d * (1.0 - jitter * rng.random()) for d in delays]
    return delays


def retry_transient(
    fn: Callable[[], T],
    attempts: int = 3,
    backoff: float = 0.0,
    retry_on: Tuple[Type[BaseException], ...] = (TransientError,),
    label: str = "work",
    sleep: Callable[[float], None] = time.sleep,
    jitter: float = 0.0,
    rng: Optional[random.Random] = None,
) -> T:
    """Run ``fn`` with bounded retry for transient failures.

    Retries only exceptions in ``retry_on`` (default:
    :class:`TransientError`); anything else propagates immediately.
    Waits ``backoff * 2**k`` seconds before retry ``k`` (the default
    ``backoff=0.0`` keeps tests instant).  ``jitter`` decorrelates the
    schedule across concurrent callers (see :func:`backoff_delays`);
    the zero-jitter default keeps the historical byte-identical delays
    and events.  The last attempt's exception propagates unchanged, so
    an unmaskable fault still surfaces typed.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    delays = backoff_delays(
        backoff, attempts, jitter=jitter, rng=rng, label=label
    )
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except retry_on as exc:
            if attempt == attempts:
                raise
            em = obs.get_emitter()
            if em.enabled:
                em.emit(
                    "resilience.retry",
                    label=label,
                    attempt=attempt,
                    attempts=attempts,
                    error=f"{type(exc).__name__}: {exc}",
                )
                obs_metrics.registry().counter("resilience.retry").inc()
            if backoff > 0:
                sleep(delays[attempt - 1])
    raise AssertionError("unreachable")  # pragma: no cover
