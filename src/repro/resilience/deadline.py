"""Wall-clock budgets for pipeline work.

A :class:`Deadline` is a point in (monotonic) time after which work
should stop.  It is *cooperative*: the allocator pipeline calls
:meth:`Deadline.check` at phase boundaries (validate / analyze / bounds
/ inter / assign / rewrite, and between spill-fallback rounds), so an
expired budget surfaces as a typed
:class:`~repro.errors.DeadlineExceeded` at the next boundary instead of
a silent overrun.  The simulators use cycle watchdogs
(:class:`~repro.errors.WatchdogError`) rather than deadlines -- cycles
are their natural budget and stay deterministic across hosts.

Deadlines compose: pass one object through nested calls and every
layer charges against the same budget.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.errors import DeadlineExceeded
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics


class Deadline:
    """A cooperative wall-clock budget.

    Build one with :meth:`after` (seconds from now) and thread it
    through ``allocate_programs(..., deadline=...)``; each phase
    boundary calls :meth:`check`, which raises
    :class:`DeadlineExceeded` once the budget is spent and emits a
    ``resilience.deadline`` telemetry event naming the phase that
    tripped.
    """

    __slots__ = ("budget", "expires_at", "_clock")

    def __init__(
        self,
        budget: float,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget}")
        self.budget = float(budget)
        self._clock = clock
        self.expires_at = clock() + budget

    @classmethod
    def after(
        cls, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        """A deadline ``seconds`` from now."""
        return cls(seconds, clock=clock)

    def remaining(self) -> float:
        """Seconds left (negative once expired)."""
        return self.expires_at - self._clock()

    def expired(self) -> bool:
        return self.remaining() <= 0

    def check(self, phase: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget is spent."""
        remaining = self.remaining()
        if remaining > 0:
            return
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "resilience.deadline",
                phase=phase,
                budget=self.budget,
                overrun=-remaining,
            )
            obs_metrics.registry().counter("resilience.deadline").inc()
        where = f" at phase {phase!r}" if phase else ""
        raise DeadlineExceeded(
            f"deadline of {self.budget:.3f}s exceeded{where} "
            f"(overrun {-remaining:.3f}s)",
            phase=phase,
        )


def check(deadline: Optional[Deadline], phase: str = "") -> None:
    """``deadline.check(phase)`` tolerating ``deadline=None`` call sites."""
    if deadline is not None:
        deadline.check(phase)
