"""Deterministic, seedable, context-manager-scoped fault injection.

Production code paths carry cheap *hook points* -- a call to
:func:`fire` naming a **site** such as ``"cache.disk"`` or
``"sim.stuck"`` -- that return ``None`` unless a :class:`FaultPlan` is
armed for the current block.  Arming happens only through
:func:`inject`::

    with inject(FaultSpec("cache.disk", mode="truncate"), seed=7) as plan:
        ...  # the next disk-cache read sees a truncated entry
    assert plan.fired  # the fault actually triggered

Everything is deterministic: a plan owns a single ``random.Random``
seeded at construction, specs fire on exact hit counts (``after`` /
``count``), and sites draw any randomness they need (e.g. which bit to
flip) from the plan's RNG -- the same seed replays the same faults.

Every triggered fault is tagged twice so tests and the chaos harness
can assert it was either *masked* or surfaced as a typed
:class:`~repro.errors.ReproError`:

* a ``fault.injected`` telemetry event (site, mode, hit number) when a
  capture is active, plus a ``fault.injected`` metric counter;
* an always-on :class:`FaultRecord` appended to ``plan.fired``.

Known sites (the hook points threaded through the tree):

=====================  ====================================================
site                   where / what
=====================  ====================================================
``cache.disk``         :meth:`repro.core.cache.AnalysisCache._disk_load`;
                       modes ``corrupt`` / ``truncate`` damage the on-disk
                       entry before it is read
``sweep.pool``         :func:`repro.harness.sweep.sweep_map` result
                       harvesting; mode ``crash`` breaks the pool, mode
                       ``hang`` simulates a worker that never returns
``fabric.item``        :mod:`repro.fabric.worker`, between claiming an
                       item and executing it; mode ``crash`` raises
                       :class:`~repro.errors.InjectedFault` *leaving
                       the claim in place* -- a worker killed mid-item,
                       reaped later by stale-claim expiry
``pipeline.analyze``   :func:`repro.core.pipeline.allocate_programs`
                       analyze phase; mode ``transient`` raises
                       :class:`~repro.errors.TransientError`
``analysis.dense``     :class:`repro.core.cache.AnalysisCache` analysis of
                       a cache miss under the dense kernels; mode
                       ``error`` raises :class:`~repro.errors.InjectedFault`
``sim.bitflip``        both engines, at context-switch boundaries; flips
                       one RNG-chosen bit of one physical register
``sim.stuck``          both engines, at memory blocks; the thread's wake
                       time moves past any plausible ``max_cycles`` so
                       only the watchdog can end the run
``service.handler``    :mod:`repro.service.server` worker loop, after a
                       request is dequeued and before the pipeline runs;
                       mode ``error`` raises
                       :class:`~repro.errors.InjectedFault`, which the
                       service converts into a typed error envelope
``service.store``      :class:`repro.service.store.ResultStore` reads and
                       writes; mode ``corrupt`` damages the on-disk entry,
                       mode ``error`` raises :class:`OSError` (absorbed by
                       the store breaker -- requests still succeed)
=====================  ====================================================
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.obs import events as obs
from repro.obs import metrics as obs_metrics

#: Wake delay used by the ``sim.stuck`` site: far past any plausible
#: ``max_cycles`` so the blocked thread never becomes ready again and
#: only the cycle watchdog can end the run.
STUCK_DELAY = 1 << 62


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire at ``site`` on specific hook hits.

    Attributes:
        site: hook-point name (see the module table).
        mode: site-specific behaviour (``corrupt``, ``truncate``,
            ``crash``, ``hang``, ``transient``, ``error``, ``bitflip``,
            ``stuck`` -- each site documents its modes).
        after: skip this many eligible hits before the first fire.
        count: fire at most this many times (0 disables the spec).
        prob: probability of firing on an eligible hit, drawn from the
            plan's seeded RNG; 1.0 (the default) keeps firing exact.
    """

    site: str
    mode: str = "error"
    after: int = 0
    count: int = 1
    prob: float = 1.0


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired (always recorded, telemetry or not)."""

    site: str
    mode: str
    hit: int  #: 1-based hit number at the site when the fault fired
    context: Tuple[Tuple[str, Any], ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "site": self.site,
            "mode": self.mode,
            "hit": self.hit,
            **dict(self.context),
        }


class FaultPlan:
    """A set of :class:`FaultSpec` plus the bookkeeping to fire them.

    Plans are armed with :func:`inject`; hook points reach the armed
    plan through :func:`active` / :func:`fire`.  ``rng`` is the single
    seeded source of randomness for both the firing decision
    (``prob < 1``) and any site-level choices (bit positions, register
    indices), so one seed replays one fault history exactly.
    """

    def __init__(self, specs: Tuple[FaultSpec, ...], seed: int = 0):
        self.specs = tuple(specs)
        self.seed = seed
        self.rng = random.Random(seed)
        self.hits: Dict[str, int] = {}
        self.fired: List[FaultRecord] = []
        self._remaining: Dict[int, int] = {
            i: s.count for i, s in enumerate(self.specs)
        }

    def fire(self, site: str, **context: Any) -> Optional[FaultSpec]:
        """Count a hook hit at ``site``; return the spec that fires, if any.

        The hit is counted once per call regardless of how many specs
        watch the site; the first eligible spec (declaration order)
        wins.  Firing appends a :class:`FaultRecord` and emits a
        ``fault.injected`` telemetry event.
        """
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for i, spec in enumerate(self.specs):
            if spec.site != site or self._remaining[i] <= 0:
                continue
            if hit <= spec.after:
                continue
            if spec.prob < 1.0 and self.rng.random() >= spec.prob:
                continue
            self._remaining[i] -= 1
            record = FaultRecord(
                site=site,
                mode=spec.mode,
                hit=hit,
                context=tuple(sorted(context.items())),
            )
            self.fired.append(record)
            em = obs.get_emitter()
            if em.enabled:
                em.emit("fault.injected", **record.to_dict())
                obs_metrics.registry().counter("fault.injected").inc()
            return spec
        return None

    def fired_at(self, site: str) -> List[FaultRecord]:
        return [r for r in self.fired if r.site == site]


_active: Optional[FaultPlan] = None


def active() -> Optional[FaultPlan]:
    """The armed plan, or ``None`` (the overwhelmingly common case)."""
    return _active


def fire(site: str, **context: Any) -> Optional[FaultSpec]:
    """Hook-point helper: fire against the armed plan, if any.

    Cheap when disarmed -- one global read and a ``None`` check -- so
    hook points on warm paths can call it unconditionally.  Hot loops
    (the simulators) should instead grab :func:`active` once per run
    and skip their fault branches entirely when it is ``None``.
    """
    plan = _active
    if plan is None:
        return None
    return plan.fire(site, **context)


@contextmanager
def inject(
    *specs: FaultSpec, seed: int = 0, plan: Optional[FaultPlan] = None
) -> Iterator[FaultPlan]:
    """Arm a fault plan for the duration of the block.

    The previous plan (normally none) is restored on exit, even on
    error, so injections scope cleanly and never leak into unrelated
    code -- including across test boundaries.
    """
    global _active
    armed = plan if plan is not None else FaultPlan(specs, seed=seed)
    previous = _active
    _active = armed
    try:
        yield armed
    finally:
        _active = previous


@contextmanager
def suspended() -> Iterator[None]:
    """Disarm fault injection for the block (restored on exit).

    Used by the independent verifier: its *oracle* runs must see the
    true machine, not the faulted one, or a corrupted oracle would mask
    real divergence (or report phantom divergence).
    """
    global _active
    previous = _active
    _active = None
    try:
        yield
    finally:
        _active = previous
