"""Whole-PU baseline allocation and standalone register counts.

The paper's baseline splits the register file into equal disjoint windows
(32 registers per thread on the IXP1200) and runs an ordinary allocator
per thread; inter-thread balancing and sharing are impossible, so a
register-hungry thread spills even while its neighbors waste registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baseline.chaitin import (
    DEFAULT_SPILL_BASE,
    ChaitinResult,
    chaitin_allocate,
)
from repro.core.analysis import ThreadAnalysis, analyze_thread
from repro.errors import AllocationError
from repro.igraph.coloring import min_color, num_colors
from repro.ir.program import Program

#: Spill-area stride between threads so their slots never collide.
SPILL_AREA_STRIDE = 0x400


def single_thread_register_count(
    program: Program, analysis: "ThreadAnalysis" = None
) -> int:
    """Registers a standalone Chaitin allocation uses (no budget, no
    spills): the heuristic chromatic number of the interference graph.

    This is the first bar of the paper's Figure 14.  Pass a precomputed
    ``analysis`` of ``program`` (e.g. from :mod:`repro.core.cache`) to
    skip the re-analysis; the graph is only read, never mutated.
    """
    if analysis is None:
        analysis = analyze_thread(program)
    return num_colors(min_color(analysis.graphs.gig))


@dataclass
class BaselinePuAllocation:
    """Fixed-window baseline allocation for one PU."""

    results: List[ChaitinResult]
    window: int

    @property
    def programs(self) -> List[Program]:
        return [r.program for r in self.results]

    @property
    def total_spill_ops(self) -> int:
        return sum(r.spill_ops for r in self.results)


def allocate_pu_baseline(
    programs: Sequence[Program], nreg: int = 128
) -> BaselinePuAllocation:
    """Allocate each thread into its fixed ``nreg / Nthd`` window.

    Thread ``i`` gets physical registers
    ``[i * window, (i + 1) * window)`` and its own spill area, exactly the
    no-sharing configuration the paper compares against.
    """
    nthd = len(programs)
    if nthd == 0:
        raise AllocationError("baseline needs at least one program")
    window = nreg // nthd
    results = [
        chaitin_allocate(
            program,
            k=window,
            phys_base=i * window,
            spill_base=DEFAULT_SPILL_BASE + i * SPILL_AREA_STRIDE,
        )
        for i, program in enumerate(programs)
    ]
    return BaselinePuAllocation(results=results, window=window)
