"""Baseline single-thread register allocation (Chaitin style).

This is the comparator the paper measures against: each thread gets a
fixed, disjoint window of the register file (32 registers on the IXP1200)
and an ordinary graph-coloring allocator that *spills* when the window is
too small.  On a network processor every spill is a ~20-cycle memory
operation that also relinquishes the PU, which is exactly why the paper's
shared-register allocation wins.

* :mod:`repro.baseline.chaitin` -- simplify/select coloring with
  spill-candidate choice and iterative spill-code insertion.
* :mod:`repro.baseline.single_thread` -- helpers: minimal register count
  of a standalone thread, and whole-PU baseline allocation with fixed
  per-thread windows.
"""

from repro.baseline.chaitin import ChaitinResult, chaitin_allocate
from repro.baseline.single_thread import (
    BaselinePuAllocation,
    allocate_pu_baseline,
    single_thread_register_count,
)

__all__ = [
    "ChaitinResult",
    "chaitin_allocate",
    "single_thread_register_count",
    "BaselinePuAllocation",
    "allocate_pu_baseline",
]
