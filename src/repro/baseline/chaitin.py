"""Chaitin-style graph-coloring register allocation with spilling.

The classic loop [Chaitin 1982]:

1. build the interference graph over virtual registers;
2. **simplify**: repeatedly remove nodes of degree < K; when none exists,
   remove the node with the smallest spill priority
   (``occurrences / degree``) as a *potential spill*;
3. **select**: pop the stack, assigning each node a color unused by its
   colored neighbors; a potential spill that finds no color becomes an
   *actual spill*;
4. insert spill code for actual spills and restart.

Spill code matches how IXP microcode must address memory (the address
travels in a register)::

    movi %sp.addr, <slot>         ; 1 cycle
    load %v.u7, [%sp.addr]        ; ~20 cycles, relinquishes the PU

so every reload/writeback is a context-switch boundary -- the property
Table 3 of the paper exploits.  Each spilled value gets a dedicated slot
in a per-thread spill area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cfg.edit import ProgramEditor
from repro.cfg.liveness import co_live_pairs, compute_liveness
from repro.errors import AllocationError
from repro.igraph.graph import UndirectedGraph
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import Imm, PhysReg, Reg, VirtualReg
from repro.ir.program import Program

#: Default word address of the spill area (kept clear of packet areas).
DEFAULT_SPILL_BASE = 0x8000


@dataclass
class ChaitinResult:
    """Outcome of baseline allocation for one thread."""

    program: Program
    colors_used: int
    spilled: List[VirtualReg]
    spill_loads: int
    spill_stores: int
    rounds: int

    @property
    def spill_ops(self) -> int:
        return self.spill_loads + self.spill_stores


def _build_graph(program: Program) -> UndirectedGraph:
    liveness = compute_liveness(program)
    graph = UndirectedGraph()
    for instr in program.instrs:
        for reg in instr.regs:
            graph.add_node(reg)
    for a, b in co_live_pairs(liveness):
        graph.add_edge(a, b)
    return graph


def _occurrences(program: Program) -> Dict[Reg, int]:
    """Loop-depth-weighted access frequency per register.

    An access at nesting depth ``d`` counts ``10**d`` (capped), the
    classic Chaitin spill-cost estimate, so loop-carried values are not
    spilled in favour of straight-line ones.
    """
    from repro.cfg.loops import loop_depth

    depths = loop_depth(program)
    out: Dict[Reg, int] = {}
    for i, instr in enumerate(program.instrs):
        weight = 10 ** min(depths[i], 4)
        for reg in instr.regs:
            out[reg] = out.get(reg, 0) + weight
    return out


def _simplify_select(
    graph: UndirectedGraph, k: int, occurrences: Dict[Reg, int]
) -> Tuple[Dict[Reg, int], List[Reg]]:
    """One coloring attempt: returns (coloring, actual_spills)."""
    work = graph.copy()
    remaining: Set[Reg] = set(work.nodes())
    stack: List[Tuple[Reg, bool]] = []  # (node, is_potential_spill)
    while remaining:
        trivial = [n for n in remaining if work.degree(n) < k]
        if trivial:
            node = min(trivial, key=str)
            stack.append((node, False))
        else:
            node = min(
                remaining,
                key=lambda n: (
                    occurrences.get(n, 0) / max(work.degree(n), 1),
                    str(n),
                ),
            )
            stack.append((node, True))
        work.remove_node(node)
        remaining.discard(node)

    coloring: Dict[Reg, int] = {}
    spills: List[Reg] = []
    for node, potential in reversed(stack):
        used = {
            coloring[nbr]
            for nbr in graph.neighbor_set(node)
            if nbr in coloring
        }
        color = next((c for c in range(k) if c not in used), None)
        if color is None:
            if not potential:
                raise AllocationError(
                    f"non-spill node {node} failed to color (k={k})"
                )
            spills.append(node)
        else:
            coloring[node] = color
    return coloring, spills


def _insert_spill_code(
    program: Program,
    spills: Sequence[VirtualReg],
    slot_of: Dict[VirtualReg, int],
) -> Tuple[Program, int, int]:
    """Rewrite ``program`` with loads/stores around every spilled access."""
    editor = ProgramEditor(program)
    n_loads = 0
    n_stores = 0
    new_instrs: Dict[int, Instruction] = {}
    spill_set = set(spills)
    for i, instr in enumerate(program.instrs):
        used = [r for r in instr.uses if r in spill_set]
        defined = [r for r in instr.defs if r in spill_set]
        if not used and not defined:
            continue
        mapping: Dict[Reg, Reg] = {}
        pre: List[Instruction] = []
        post: List[Instruction] = []
        for reg in sorted(set(used), key=str):
            tmp = VirtualReg(f"{reg.name}.u{i}")
            addr = VirtualReg(f"{reg.name}.ua{i}")
            pre.append(Instruction(Opcode.MOVI, (addr, Imm(slot_of[reg]))))
            pre.append(Instruction(Opcode.LOAD, (tmp, addr, Imm(0))))
            mapping[reg] = tmp
            n_loads += 1
        for reg in sorted(set(defined), key=str):
            tmp = mapping.get(reg, VirtualReg(f"{reg.name}.d{i}"))
            addr = VirtualReg(f"{reg.name}.da{i}")
            post.append(Instruction(Opcode.MOVI, (addr, Imm(slot_of[reg]))))
            post.append(Instruction(Opcode.STORE, (tmp, addr, Imm(0))))
            mapping[reg] = tmp
            n_stores += 1
        new_instrs[i] = instr.substitute_regs(mapping)
        if pre:
            editor.insert_before(i, pre)
        if post:
            editor.insert_after(i, post)
    # Substitute operands first (indices unchanged), then commit inserts.
    for i, instr in new_instrs.items():
        program.instrs[i] = instr
    return editor.commit(), n_loads, n_stores


def spill_until_colorable(
    program: Program,
    k: int,
    spill_base: int = DEFAULT_SPILL_BASE,
    max_rounds: int = 64,
) -> Tuple[Program, Dict[Reg, int], "ChaitinStats"]:
    """Insert spill code until the program is ``k``-colorable.

    Returns the (still virtual-register) program, a valid coloring into
    ``[0, k)``, and the spill statistics.  This is the reusable half of
    :func:`chaitin_allocate`; the cross-thread allocator's spill fallback
    also uses it to relieve a thread whose lower bounds exceed its share
    of the register file.
    """
    current = program.copy()
    all_spilled: List[VirtualReg] = []
    slot_of: Dict[VirtualReg, int] = {}
    next_slot = spill_base
    total_loads = 0
    total_stores = 0
    unspillable: set = set()
    for round_no in range(1, max_rounds + 1):
        graph = _build_graph(current)
        occurrences = _occurrences(current)
        coloring, spills = _simplify_select(graph, k, occurrences)
        if not spills:
            stats = ChaitinStats(
                spilled=all_spilled,
                spill_loads=total_loads,
                spill_stores=total_stores,
                rounds=round_no,
            )
            return current, coloring, stats
        # Spill temps have atomic live ranges already; re-spilling one
        # means k is below the program's per-instruction register need
        # and no amount of spilling can help.
        fresh = [
            r
            for r in spills
            if isinstance(r, VirtualReg) and r.name not in unspillable
        ]
        if not fresh:
            raise AllocationError(
                f"{program.name}: not colorable with k={k} even after "
                f"spilling everything (an instruction needs more than "
                f"{k} registers at once)"
            )
        for reg in fresh:
            if reg not in slot_of:
                slot_of[reg] = next_slot
                next_slot += 1
            all_spilled.append(reg)
        before = {r.name for r in current.virtual_regs()}
        current, n_loads, n_stores = _insert_spill_code(
            current, fresh, slot_of
        )
        unspillable |= {
            r.name for r in current.virtual_regs() if r.name not in before
        }
        total_loads += n_loads
        total_stores += n_stores
    raise AllocationError(
        f"{program.name}: spilling failed to converge in {max_rounds} rounds"
    )


@dataclass
class ChaitinStats:
    """Spill statistics shared by both entry points."""

    spilled: List[VirtualReg]
    spill_loads: int
    spill_stores: int
    rounds: int


def chaitin_allocate(
    program: Program,
    k: int,
    phys_base: int = 0,
    spill_base: int = DEFAULT_SPILL_BASE,
    max_rounds: int = 64,
) -> ChaitinResult:
    """Allocate ``program`` into ``k`` physical registers
    ``$r[phys_base] .. $r[phys_base + k - 1]``, spilling as needed."""
    current, coloring, stats = spill_until_colorable(
        program, k, spill_base=spill_base, max_rounds=max_rounds
    )
    mapping: Dict[Reg, Reg] = {
        reg: PhysReg(phys_base + color) for reg, color in coloring.items()
    }
    out = Program(
        name=current.name,
        instrs=[instr.substitute_regs(mapping) for instr in current.instrs],
        labels=dict(current.labels),
    )
    colors_used = len(set(coloring.values())) if coloring else 0
    return ChaitinResult(
        program=out,
        colors_used=colors_used,
        spilled=stats.spilled,
        spill_loads=stats.spill_loads,
        spill_stores=stats.spill_stores,
        rounds=stats.rounds,
    )
