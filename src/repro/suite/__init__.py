"""The benchmark suite: 11 packet-processing kernels in npir assembly.

The paper evaluates on programs from CommBench, NetBench, Intel example
code and the WRAPS scheduler, rewritten into IXP C / microcode by the
authors.  We write the same kernels directly in npir.  Each kernel is an
infinite packet loop -- ``recv``, process, ``store``/``send``, repeat --
that halts when its input queue drains, following the packet-buffer layout
of :mod:`repro.sim.packets`.

Register-pressure profile mirrors the paper's: ``md5`` and the two
``wraps`` kernels hold working sets larger than a 32-register window (so
the fixed-window baseline spills), the others are moderate.

Use :func:`repro.suite.registry.load` / :data:`repro.suite.registry.BENCHMARKS`
to obtain programs by name.
"""

from repro.suite.registry import BENCHMARKS, load, load_all

__all__ = ["BENCHMARKS", "load", "load_all"]
