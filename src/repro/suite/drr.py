"""``drr`` -- deficit round-robin scheduling (CommBench).

Flow state (the deficit counters) lives in SRAM, not registers, so the
kernel is CSB-dense: per packet it hashes the header to a flow, loads the
flow's deficit, tops it up with the quantum, decides whether the packet may
be sent, writes the deficit back and records the verdict.  This is the
benchmark profile with small NSRs (many loads/stores close together).
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.suite.common import finish

#: Word address of the per-flow deficit table.
DEFICIT_BASE = 0x5000
#: Number of flows (power of two).
N_FLOWS = 8
#: DRR quantum added per visit.
QUANTUM = 12


def build() -> Program:
    """Build the ``drr`` kernel."""
    text = f"""
; drr: deficit round robin with SRAM-resident flow state.
    movi %quantum, {QUANTUM}
start:
    recv %buf
    beqi %buf, 0, done
    load %len, [%buf]
    load %h1, [%buf + 1]
    load %h2, [%buf + 2]
    ; flow id from a Jenkins-style header mix
    xor %fid, %h1, %h2
    shli %t, %fid, 13
    xor %fid, %fid, %t
    shri %t, %fid, 17
    xor %fid, %fid, %t
    shli %t, %fid, 5
    xor %fid, %fid, %t
    mul %fid, %fid, %quantum
    shri %t, %fid, 8
    xor %fid, %fid, %t
    andi %fid, %fid, {N_FLOWS - 1}
    addi %slot, %fid, {DEFICIT_BASE}
    load %deficit, [%slot]
    add %deficit, %deficit, %quantum
    movi %verdict, 0
    blt %deficit, %len, park
    sub %deficit, %deficit, %len
    movi %verdict, 1
park:
    store %deficit, [%slot]
    ctx
    add %out, %buf, %len
    store %verdict, [%out + 1]
    store %fid, [%out + 2]
    send %buf
    br start
done:
    halt
"""
    return finish(text, "drr")
