"""``crc`` -- CRC-32 over the payload (CommBench/NetBench kernel).

Reflected CRC-32 (polynomial ``0xEDB88320``) computed branchlessly: per
bit, the conditional XOR is ``crc ^= (crc & 1) * poly`` -- multiply by the
0/1 mask instead of branching, the idiom used on branch-expensive packet
engines.  The outer loop walks payload words; the inner byte loop is
unrolled over the 8 bit steps.  Light register pressure, ALU-dense with a
CSB only at each word load.
"""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.suite.common import finish

POLY = 0xEDB88320


def _bit_step() -> str:
    return (
        "    andi %mask, %crc, 1\n"
        "    mul %mp, %mask, %poly\n"
        "    shri %crc, %crc, 1\n"
        "    xor %crc, %crc, %mp\n"
    )


def build() -> Program:
    """Build the ``crc`` kernel."""
    parts: List[str] = [
        "; crc: reflected CRC-32, branchless bit steps, software-pipelined\n"
        "; word prefetch (the next word is fetched while the current one\n"
        "; is processed, rotating the two word registers around different\n"
        "; CSBs -- the paper's Figure-9 lifetime pattern).\n",
        f"    movi %poly, {POLY}\n",
        "start:\n",
        "    recv %buf\n",
        "    beqi %buf, 0, done\n",
        "    load %len, [%buf]\n",
        "    movi %crc, 0xFFFFFFFF\n",
        "    load %w, [%buf + 1]\n",
        "    movi %i, 0\n",
        "wloop:\n",
        "    bge %i, %len, fin\n",
        "    addi %i, %i, 1\n",
        "    add %addr, %buf, %i\n",
        "    load %wnext, [%addr + 1]\n",
        "    movi %j, 0\n",
        "bloop:\n",
        "    bgei %j, 4, wdone\n",
        "    shli %sh, %j, 3\n",
        "    shr %byte, %w, %sh\n",
        "    andi %byte, %byte, 0xFF\n",
        "    xor %crc, %crc, %byte\n",
    ]
    for _ in range(8):
        parts.append(_bit_step())
    parts.append("    addi %j, %j, 1\n")
    parts.append("    br bloop\n")
    parts.append("wdone:\n")
    parts.append("    mov %w, %wnext\n")
    parts.append("    ctx\n")
    parts.append("    br wloop\n")
    parts.append("fin:\n")
    parts.append("    xori %crc, %crc, 0xFFFFFFFF\n")
    parts.append("    add %out, %buf, %len\n")
    parts.append("    store %crc, [%out + 1]\n")
    parts.append("    send %buf\n")
    parts.append("    br start\n")
    parts.append("done:\n    halt\n")
    return finish("".join(parts), "crc")
