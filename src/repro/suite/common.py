"""Shared helpers for writing benchmark kernels in npir text.

Kernels are generated as assembly strings (unrolled loops, hoisted
constants) and parsed once; :func:`finish` validates the result so a
malformed generator fails at import-test time, not inside an experiment.
"""

from __future__ import annotations

from typing import List

from repro.ir.parser import parse_program
from repro.ir.program import Program
from repro.ir.validate import validate_program


def rotl(dst: str, src: str, amount: int, t1: str = "rt1", t2: str = "rt2") -> str:
    """Emit a 32-bit rotate-left of ``src`` by ``amount`` into ``dst``.

    Uses two scratch virtual registers (short-lived, internal).
    """
    amount %= 32
    if amount == 0:
        return f"    mov %{dst}, %{src}\n"
    return (
        f"    shli %{t1}, %{src}, {amount}\n"
        f"    shri %{t2}, %{src}, {32 - amount}\n"
        f"    or %{dst}, %{t1}, %{t2}\n"
    )


def finish(text: str, name: str) -> Program:
    """Parse + validate a generated kernel."""
    program = parse_program(text, name)
    validate_program(program)
    return program
