"""``ipchains`` -- firewall rule matching (NetBench).

Classic linear rule-chain evaluation: the packet's 5-tuple-ish header
fields are matched against ``N_RULES`` rules stored in SRAM, each rule four
words ``(src_mask, src_value, dst_mask, dst_value)`` with an action word
implied by the rule index.  The first matching rule's index is the verdict;
an all-zero rule (an uninitialised table) matches everything, mirroring a
default-accept chain tail.  Rule loads make the loop CSB-dense.
"""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.suite.common import finish

#: Word address of the rule table.
RULE_BASE = 0x6000
#: Rules in the chain; each occupies 4 words.
N_RULES = 6


def build(n_rules: int = N_RULES) -> Program:
    """Build the ``ipchains`` kernel."""
    parts: List[str] = [
        "; ipchains: linear firewall rule chain over SRAM rules.\n",
        "start:\n",
        "    recv %buf\n",
        "    beqi %buf, 0, done\n",
        "    load %len, [%buf]\n",
        "    load %src, [%buf + 1]\n",
        "    load %dst, [%buf + 2]\n",
        "    load %ports, [%buf + 3]\n",
        f"    movi %verdict, {n_rules}\n",
        "    movi %r, 0\n",
        "rloop:\n",
        f"    bgei %r, {n_rules}, fin\n",
        "    shli %slot, %r, 2\n",
        f"    addi %slot, %slot, {RULE_BASE}\n",
        "    load %smask, [%slot]\n",
        "    load %sval, [%slot + 1]\n",
        "    and %ms, %src, %smask\n",
        "    bne %ms, %sval, next\n",
        "    load %dmask, [%slot + 2]\n",
        "    load %dval, [%slot + 3]\n",
        "    and %md, %dst, %dmask\n",
        "    bne %md, %dval, next\n",
        "    mov %verdict, %r\n",
        "    br fin\n",
        "next:\n",
        "    addi %r, %r, 1\n",
        "    ctx\n",
        "    br rloop\n",
        "fin:\n",
        "    ; fold the port word into the verdict tag for observability\n",
        "    andi %ptag, %ports, 0xFF\n",
        "    shli %tag, %verdict, 8\n",
        "    or %tag, %tag, %ptag\n",
        "    add %out, %buf, %len\n",
        "    store %tag, [%out + 1]\n",
        "    send %buf\n",
        "    br start\n",
        "done:\n    halt\n",
    ]
    return finish("".join(parts), "ipchains")
