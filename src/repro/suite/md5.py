"""``md5`` -- message-digest kernel (NetBench).

The register-hungry benchmark of the paper's Table 3 scenarios: the whole
16-word message block is loaded into registers, twelve additive constants
are hoisted out of the packet loop (so they stay live across *every* CSB),
and the digest state is carried through unrolled MD5 rounds built from the
real F/G non-linear functions and rotate-left sequences.  Working-set size
exceeds a 32-register window, so the fixed-window baseline must spill; our
allocator instead grows the thread's private share -- the effect the paper
measures.

The digest (a, b, c, d) is stored into the packet's scratch words before
``send``.
"""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.suite.common import finish, rotl

#: The first 22 MD5 T constants, hoisted into registers (live across the
#: whole packet loop, so they demand private registers).  22 makes two
#: md5 threads plus two fir2dim threads slightly overflow a 128-register
#: file, which is the regime the paper's Table 3 scenario 1 studies.
HOISTED_T = [
    0xD76AA478, 0xE8C7B756, 0x242070DB, 0xC1BDCEEE,
    0xF57C0FAF, 0x4787C62A, 0xA8304613, 0xFD469501,
    0x698098D8, 0x8B44F7AF, 0xFFFF5BB1, 0x895CD7BE,
    0x6B901122, 0xFD987193, 0xA679438E, 0x49B40821,
    0xF61E2562, 0xC040B340, 0x265E5A51, 0xE9B6C7AA,
    0xD62F105D, 0x02441453,
]
#: Remaining step constants are folded in as immediates.
EXTRA_T = [
    0x6B901122, 0xFD987193, 0xA679438E, 0x49B40821,
    0xF61E2562, 0xC040B340, 0x265E5A51, 0xE9B6C7AA,
    0xD62F105D, 0x02441453, 0xD8A1E681, 0xE7D3FBC8,
    0x21E1CDE6, 0xC33707D6, 0xF4D50D87, 0x455A14ED,
]
#: Per-step rotate amounts (round 1 and round 2 of real MD5).
S1 = [7, 12, 17, 22] * 4
S2 = [5, 9, 14, 20] * 4
#: Round-2 message schedule: g = (5*i + 1) mod 16.
G2 = [(5 * i + 1) % 16 for i in range(16)]

INIT = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


def _round1_step(i: int, a: str, b: str, c: str, d: str) -> str:
    """F(b,c,d) = (b & c) | (~b & d); a = b + rotl(a + F + m[i] + T, s)."""
    t_src = f"%k{i}" if i < len(HOISTED_T) else None
    lines = [
        f"    and %f1, %{b}, %{c}",
        f"    xori %nb, %{b}, 0xFFFFFFFF",
        f"    and %f2, %nb, %{d}",
        f"    or %f, %f1, %f2",
        f"    add %acc, %{a}, %f",
        f"    add %acc, %acc, %m{i}",
    ]
    if t_src is not None:
        lines.append(f"    add %acc, %acc, {t_src}")
    else:
        lines.append(f"    addi %acc, %acc, {EXTRA_T[i - len(HOISTED_T)]}")
    body = "\n".join(lines) + "\n"
    body += rotl("acc", "acc", S1[i])
    body += f"    add %{a}, %{b}, %acc\n"
    return body


def _round2_step(i: int, a: str, b: str, c: str, d: str) -> str:
    """G(b,c,d) = (d & b) | (~d & c); a = b + rotl(a + G + m[g] + T, s)."""
    g = G2[i]
    body = (
        f"    and %f1, %{d}, %{b}\n"
        f"    xori %nb, %{d}, 0xFFFFFFFF\n"
        f"    and %f2, %nb, %{c}\n"
        f"    or %f, %f1, %f2\n"
        f"    add %acc, %{a}, %f\n"
        f"    add %acc, %acc, %m{g}\n"
    )
    if 16 + i < len(HOISTED_T):
        body += f"    add %acc, %acc, %k{16 + i}\n"
    else:
        t = EXTRA_T[(len(EXTRA_T) // 2 + i // 2) % len(EXTRA_T)]
        body += f"    addi %acc, %acc, {t}\n"
    body += rotl("acc", "acc", S2[i])
    body += f"    add %{a}, %{b}, %acc\n"
    return body


def build(rounds: int = 2) -> Program:
    """Build the ``md5`` kernel (``rounds`` in [1, 2])."""
    if rounds not in (1, 2):
        raise ValueError("md5 supports 1 or 2 unrolled rounds")
    parts: List[str] = ["; md5: two unrolled MD5 rounds over a 16-word block.\n"]
    for idx, t in enumerate(HOISTED_T):
        parts.append(f"    movi %k{idx}, {t}\n")
    parts.append("start:\n")
    parts.append("    recv %buf\n")
    parts.append("    beqi %buf, 0, done\n")
    parts.append("    load %len, [%buf]\n")
    # Burst-load the 16-word block (4 SRAM references through transfer
    # registers, the idiom IXP microcode actually uses).  Reads past a
    # short payload see zeros.
    for q in range(4):
        dsts = ", ".join(f"%m{4 * q + k}" for k in range(4))
        parts.append(f"    loadq {dsts}, [%buf + {1 + 4 * q}]\n")
    for name, val in zip("abcd", INIT):
        parts.append(f"    movi %{name}, {val}\n")
    order = ["a", "b", "c", "d"]
    for i in range(16):
        a, b, c, d = (
            order[(0 - i) % 4],
            order[(1 - i) % 4],
            order[(2 - i) % 4],
            order[(3 - i) % 4],
        )
        parts.append(_round1_step(i, a, b, c, d))
    if rounds == 2:
        for i in range(16):
            a, b, c, d = (
                order[(0 - i) % 4],
                order[(1 - i) % 4],
                order[(2 - i) % 4],
                order[(3 - i) % 4],
            )
            parts.append(_round2_step(i, a, b, c, d))
    # Final additions with the public initial values, then store digest.
    for name, val in zip("abcd", INIT):
        parts.append(f"    addi %{name}, %{name}, {val}\n")
    parts.append("    add %out, %buf, %len\n")
    parts.append("    storeq %a, %b, %c, %d, [%out + 1]\n")
    # Voluntary fairness switch once per packet, after the block's values
    # are dead: the message words stay internal to their NSR.
    parts.append("    ctx\n")
    parts.append("    send %buf\n")
    parts.append("    br start\n")
    parts.append("done:\n    halt\n")
    return finish("".join(parts), "md5")
