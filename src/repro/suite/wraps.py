"""``wraps`` -- the WRAPS packet scheduler (Zhuang & Liu, HiPC 2002).

The paper's Table 3 scenario 3 pairs these two kernels with ``fir2dim``
and ``frag``; with a fixed 32-register window they "run much slower (due to
spills) if registers are not allocated properly", so they are the
register-hungriest programs in the suite.

The scheduler keeps per-flow state *resident in registers* across packets
(the whole point of running it on a register-rich micro-engine):

* :func:`build_recv` -- classify each packet to one of ``N_FLOWS`` flows
  and update that flow's credit and virtual finish time; the ``2 *
  N_FLOWS`` state registers plus the flow weights are live across every
  CSB.
* :func:`build_send` -- a full unrolled min-tournament over the flows'
  finish times picks the next flow to serve; its credit is charged and the
  winner is written to the packet scratch.
"""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.suite.common import finish

#: Number of flows whose state stays register-resident.  20 flows put the
#: two kernels around 44/46 private registers: each alone overflows a
#: fixed 32-register window (forcing baseline spills), while two wraps
#: threads plus two light threads still leave the 128-register file a
#: little headroom for the shared pool.
N_FLOWS = 20
#: Flows per group in the grouped minimum tournament / signature trees.
GROUP = 5
#: Per-flow weights (cycled pattern; immediates in the update code).
WEIGHTS = [1, 2, 3, 4] * 5


def build_recv(n_flows: int = N_FLOWS) -> Program:
    """Build ``wraps_recv``."""
    parts: List[str] = [
        "; wraps_recv: per-flow credit/finish-time update, state in regs.\n"
    ]
    for f in range(n_flows):
        parts.append(f"    movi %cr{f}, 0\n")
        parts.append(f"    movi %ft{f}, 0\n")
    parts.append("    movi %vclock, 0\n")
    parts.append("start:\n")
    parts.append("    recv %buf\n")
    parts.append("    beqi %buf, 0, done\n")
    parts.append("    load %len, [%buf]\n")
    parts.append("    load %hdr, [%buf + 1]\n")
    parts.append("    addi %vclock, %vclock, 1\n")
    parts.append("    ; flow id = low bits of a header hash\n")
    parts.append("    shri %t, %hdr, 16\n")
    parts.append("    xor %fid, %hdr, %t\n")
    parts.append(f"    andi %fid, %fid, {n_flows - 1}\n")
    for f in range(n_flows):
        parts.append(f"    beqi %fid, {f}, flow{f}\n")
    parts.append("    br emit\n")
    for f in range(n_flows):
        w = WEIGHTS[f % len(WEIGHTS)]
        parts.append(f"flow{f}:\n")
        parts.append(f"    addi %cr{f}, %cr{f}, {w}\n")
        parts.append(f"    add %ft{f}, %ft{f}, %len\n")
        parts.append(f"    add %ft{f}, %ft{f}, %cr{f}\n")
        parts.append("    br emit\n")
    parts.append("emit:\n")
    parts.append("    ctx\n")
    # Fold the whole scheduler state into an observable signature via a
    # grouped reduction: the group partials are co-live temporaries
    # internal to this NSR -- pressure the shared registers absorb.
    n_groups = (n_flows + GROUP - 1) // GROUP
    for g in range(n_groups):
        members = range(g * GROUP, min((g + 1) * GROUP, n_flows))
        first = True
        for f in members:
            if first:
                parts.append(f"    mov %sg{g}, %ft{f}\n")
                first = False
            else:
                parts.append(f"    xor %sg{g}, %sg{g}, %ft{f}\n")
    parts.append("    mov %sig, %sg0\n")
    for g in range(1, n_groups):
        parts.append(f"    xor %sig, %sig, %sg{g}\n")
    parts.append("    add %out, %buf, %len\n")
    parts.append("    store %fid, [%out + 1]\n")
    parts.append("    store %vclock, [%out + 2]\n")
    parts.append("    store %sig, [%out + 3]\n")
    parts.append("    send %buf\n")
    parts.append("    br start\n")
    parts.append("done:\n    halt\n")
    return finish("".join(parts), "wraps_recv")


def build_send(n_flows: int = N_FLOWS) -> Program:
    """Build ``wraps_send``."""
    parts: List[str] = [
        "; wraps_send: unrolled min-tournament over resident finish times.\n"
    ]
    for f in range(n_flows):
        # Deterministic non-trivial initial finish times and credits.
        parts.append(f"    movi %ft{f}, {(f * 37 + 11) & 0xFF}\n")
        parts.append(f"    movi %cr{f}, {(f * 13 + 5) & 0x3F}\n")
    parts.append("start:\n")
    parts.append("    recv %buf\n")
    parts.append("    beqi %buf, 0, done\n")
    parts.append("    load %len, [%buf]\n")
    # Grouped minimum tournament: per-group minima (value and index) are
    # computed first and reduced at the end; the group temporaries are
    # co-live inside this NSR, pressure the shared registers absorb.
    n_groups = (n_flows + GROUP - 1) // GROUP
    for g in range(n_groups):
        members = list(range(g * GROUP, min((g + 1) * GROUP, n_flows)))
        head, rest = members[0], members[1:]
        parts.append(f"    mov %mn{g}, %ft{head}\n")
        parts.append(f"    movi %id{g}, {head}\n")
        for f in rest:
            parts.append(f"    bge %ft{f}, %mn{g}, skip{f}\n")
            parts.append(f"    mov %mn{g}, %ft{f}\n")
            parts.append(f"    movi %id{g}, {f}\n")
            parts.append(f"skip{f}:\n" + "    nop\n")
    parts.append("    mov %best, %mn0\n")
    parts.append("    mov %bid, %id0\n")
    for g in range(1, n_groups):
        parts.append(f"    bge %mn{g}, %best, gskip{g}\n")
        parts.append(f"    mov %best, %mn{g}\n")
        parts.append(f"    mov %bid, %id{g}\n")
        parts.append(f"gskip{g}:\n" + "    nop\n")
    parts.append("    ctx\n")
    # Charge the winner: ft += len, cr -= 1 (floored at 0).
    for f in range(n_flows):
        parts.append(f"    bnei %bid, {f}, nocharge{f}\n")
        parts.append(f"    add %ft{f}, %ft{f}, %len\n")
        parts.append(f"    beqi %cr{f}, 0, nocharge{f}\n")
        parts.append(f"    subi %cr{f}, %cr{f}, 1\n")
        parts.append(f"nocharge{f}:\n" + "    nop\n")
    parts.append("    add %out, %buf, %len\n")
    parts.append("    store %bid, [%out + 1]\n")
    parts.append("    store %best, [%out + 2]\n")
    parts.append("    send %buf\n")
    parts.append("    br start\n")
    parts.append("done:\n    halt\n")
    return finish("".join(parts), "wraps_send")
