"""Benchmark registry: name -> builder for the 11 kernels.

Order follows the paper's Table 1 grouping: CommBench kernels, NetBench
kernels, Intel example code, and the WRAPS scheduler.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.ir.program import Program
from repro.suite import crc as _crc
from repro.suite import drr as _drr
from repro.suite import fir2dim as _fir2dim
from repro.suite import frag as _frag
from repro.suite import ipchains as _ipchains
from repro.suite import l2l3fwd as _l2l3fwd
from repro.suite import md5 as _md5
from repro.suite import url as _url
from repro.suite import wraps as _wraps

#: All benchmark builders by canonical name.
BENCHMARKS: Dict[str, Callable[[], Program]] = {
    "frag": _frag.build,
    "drr": _drr.build,
    "crc": _crc.build,
    "url": _url.build,
    "md5": _md5.build,
    "ipchains": _ipchains.build,
    "fir2dim": _fir2dim.build,
    "l2l3fwd_recv": _l2l3fwd.build_recv,
    "l2l3fwd_send": _l2l3fwd.build_send,
    "wraps_recv": _wraps.build_recv,
    "wraps_send": _wraps.build_send,
}


def load(name: str) -> Program:
    """Build a fresh copy of benchmark ``name``."""
    try:
        builder = BENCHMARKS[name]
    except KeyError:
        known = ", ".join(sorted(BENCHMARKS))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None
    return builder()


def load_all() -> List[Program]:
    """Build every benchmark once, in registry order."""
    return [builder() for builder in BENCHMARKS.values()]
