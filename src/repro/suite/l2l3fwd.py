"""``l2l3fwd`` -- layer-2/layer-3 forwarding (Intel IXP example code).

Two kernels, one per pipeline role (the paper's Table 3 scenario 2 runs
them on threads 0/1 with ``md5`` on threads 2/3):

* :func:`build_recv` -- parse the Ethernet/IP header words, hash the
  destination, probe a forwarding table in SRAM (linear probing, bounded),
  and write the output port into the packet's scratch area.
* :func:`build_send` -- rewrite source/destination MACs from hoisted
  station registers, decrement the TTL byte, apply the RFC-1624
  incremental checksum fixup, store the header back and transmit.

Both have moderate pressure and CSB-dense bodies (table probes are loads).
"""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.suite.common import finish

#: Word address of the forwarding table (outside packet/spill areas).
TABLE_BASE = 0x4000
#: log2 of table buckets.
TABLE_BITS = 6
#: Linear-probe attempts before falling back to the default port.
PROBES = 4
#: Default output port when no table entry matches.
DEFAULT_PORT = 0x1F


def build_recv() -> Program:
    """Build ``l2l3fwd_recv``."""
    mask = (1 << TABLE_BITS) - 1
    parts: List[str] = [
        "; l2l3fwd_recv: header parse + hashed forwarding-table probe.\n",
        "start:\n",
        "    recv %buf\n",
        "    beqi %buf, 0, done\n",
        "    load %len, [%buf]\n",
        "    load %dmac_hi, [%buf + 1]\n",
        "    load %dmac_lo, [%buf + 2]\n",
        "    load %smac_hi, [%buf + 3]\n",
        "    load %ethtype, [%buf + 4]\n",
        "    ; hash = (dmac_hi ^ dmac_lo ^ (dmac_lo >> 16)) & mask\n",
        "    xor %h, %dmac_hi, %dmac_lo\n",
        "    shri %t, %dmac_lo, 16\n",
        "    xor %h, %h, %t\n",
        f"    andi %h, %h, {mask}\n",
        f"    movi %port, {DEFAULT_PORT}\n",
    ]
    for probe in range(PROBES):
        parts.append(f"probe{probe}:\n" if probe else "")
        parts.append("    shli %slot, %h, 1\n")
        parts.append(f"    addi %slot, %slot, {TABLE_BASE}\n")
        parts.append("    load %key, [%slot]\n")
        parts.append(f"    bne %key, %dmac_lo, miss{probe}\n")
        parts.append("    load %port, [%slot + 1]\n")
        parts.append("    br emit\n")
        parts.append(f"miss{probe}:\n")
        parts.append("    addi %h, %h, 1\n")
        parts.append(f"    andi %h, %h, {mask}\n")
    parts.append("    ctx\n")
    parts.append("emit:\n")
    parts.append("    add %out, %buf, %len\n")
    parts.append("    store %port, [%out + 1]\n")
    parts.append("    store %ethtype, [%out + 2]\n")
    parts.append("    xor %sig, %smac_hi, %dmac_hi\n")
    parts.append("    store %sig, [%out + 3]\n")
    parts.append("    send %buf\n")
    parts.append("    br start\n")
    parts.append("done:\n    halt\n")
    return finish("".join(parts), "l2l3fwd_recv")


#: Hoisted station MAC words written into outgoing frames.
STATION_MAC_HI = 0x0002B3
STATION_MAC_LO = 0x1C4F9A00


def build_send() -> Program:
    """Build ``l2l3fwd_send``."""
    text = f"""
; l2l3fwd_send: MAC rewrite + TTL decrement + checksum fixup.
    movi %sta_hi, {STATION_MAC_HI}
    movi %sta_lo, {STATION_MAC_LO}
start:
    recv %buf
    beqi %buf, 0, done
    load %len, [%buf]
    load %dmac_hi, [%buf + 1]
    load %dmac_lo, [%buf + 2]
    load %ttlw, [%buf + 3]
    load %csum, [%buf + 4]
    ; flow tag: mixed from the MAC words with co-live scratch values --
    ; pure ALU work internal to this non-switch region
    xor %t1, %dmac_hi, %dmac_lo
    shli %t2, %dmac_hi, 7
    shri %t3, %dmac_lo, 9
    xor %t1, %t1, %t2
    xor %t1, %t1, %t3
    store %t1, [%buf + 7]
    ; move old destination into source, install station as destination
    store %dmac_hi, [%buf + 5]
    store %dmac_lo, [%buf + 6]
    store %sta_hi, [%buf + 1]
    store %sta_lo, [%buf + 2]
    ; TTL lives in bits 24..31 of word 3; drop packets at TTL 0
    shri %ttl, %ttlw, 24
    beqi %ttl, 0, drop
    subi %ttl, %ttl, 1
    andi %rest, %ttlw, 0xFFFFFF
    shli %nttl, %ttl, 24
    or %ttlw, %nttl, %rest
    store %ttlw, [%buf + 3]
    ; RFC 1624 incremental fixup: csum' = csum + 0x0100 folded to 16 bits
    addi %csum, %csum, 0x0100
    shri %carry, %csum, 16
    andi %csum, %csum, 0xFFFF
    add %csum, %csum, %carry
    store %csum, [%buf + 4]
    ctx
    send %buf
    br start
drop:
    add %out, %buf, %len
    movi %mark, 0xDEAD
    store %mark, [%out + 1]
    br start
done:
    halt
"""
    return finish(text, "l2l3fwd_send")
