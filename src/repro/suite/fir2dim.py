"""``fir2dim`` -- two-dimensional FIR filter (DSPstone kernel, used by the
paper's Table 3 scenarios as the register-light partner thread).

A 3x3 convolution over a 4x4 image carried in the packet payload.  The
image is loaded into registers once per packet (16 resident pixel
registers) and the four valid output positions are computed with unrolled
9-tap multiply-accumulates; coefficients are compile-time immediates, as a
real compiler would fold them.  Working set ~22 registers: comfortably
inside a 32-register window (the intended donor thread when co-scheduled
with ``md5`` or ``wraps``) but big enough that balancing matters.
"""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.suite.common import finish

#: The 3x3 kernel (small primes keep products recognisable in tests).
COEFFS = [1, 2, 3, 5, 7, 11, 13, 17, 19]
#: Image edge length carried in the payload (row-major, words 1..16).
IMAGE_DIM = 4


def build() -> Program:
    """Build the ``fir2dim`` kernel.

    Besides the convolution proper, the kernel exports a small
    *inter-frame edge signature*: three staggered accumulators ``e0 / e1 /
    e2`` whose lifetimes rotate around the per-output ``ctx`` switches
    (``e2`` survives into the next packet).  They are pairwise co-live
    across *different* CSBs -- the paper's Figure 9 triangle -- so the
    boundary graph needs one more color than any single CSB does
    (``MaxPR = MinPR + 1``) and the inter-thread allocator can buy one
    register back for a move or two.  This staggered-lifetime shape is
    what software-pipelined streaming kernels naturally produce.
    """
    n_px = IMAGE_DIM * IMAGE_DIM
    parts: List[str] = [
        "; fir2dim: 3x3 convolution, image resident in registers.\n",
        "    movi %e2, 0\n",
        "start:\n",
        "    recv %buf\n",
        "    beqi %buf, 0, done\n",
        "    load %len, [%buf]\n",
    ]
    for q in range(n_px // 4):
        dsts = ", ".join(f"%px{4 * q + k}" for k in range(4))
        parts.append(f"    loadq {dsts}, [%buf + {1 + 4 * q}]\n")
    out_positions = [
        (r, c) for r in range(IMAGE_DIM - 2) for c in range(IMAGE_DIM - 2)
    ]
    parts.append("    add %out, %buf, %len\n")
    # The previous frame's edge signature is flushed first; e2 stays live
    # across this frame's loads until here.
    parts.append(f"    store %e2, [%out + {2 + len(out_positions)}]\n")
    for n, (r, c) in enumerate(out_positions):
        parts.append(f"    movi %acc{n}, 0\n")
        for dr in range(3):
            for dc in range(3):
                word = (r + dr) * IMAGE_DIM + (c + dc)
                tap = dr * 3 + dc
                parts.append(f"    muli %prod, %px{word}, {COEFFS[tap]}\n")
                parts.append(f"    add %acc{n}, %acc{n}, %prod\n")
    # Inter-frame edge signature: e2 survives into the next packet.
    parts.append("    add %e0, %px0, %px15\n")
    parts.append("    add %e1, %px3, %px12\n")
    parts.append("    add %e2, %px5, %px10\n")
    parts.append("    xor %edge, %e0, %e1\n")
    # One burst flush for the four outputs: the accumulators die here
    # without ever crossing a CSB, so they stay internal to this NSR.
    parts.append("    storeq %acc0, %acc1, %acc2, %acc3, [%out + 1]\n")
    parts.append(f"    store %edge, [%out + {1 + len(out_positions)}]\n")
    parts.append("    ctx\n")
    parts.append("    send %buf\n")
    parts.append("    br start\n")
    parts.append("done:\n    halt\n")
    return finish("".join(parts), "fir2dim")
