"""``frag`` -- IP fragmentation (CommBench).

The kernel the paper's running example (Figure 4) is lifted from: compute
the one's-complement IP checksum over the payload, decide whether the
packet needs fragmentation against an MTU, and write the (checksum,
fragment-count) results into the packet's scratch words.  Moderate register
pressure, a voluntary ``ctx`` inside the checksum loop exactly as the paper
describes programmers doing to avoid monopolizing the PU.
"""

from __future__ import annotations

from repro.ir.program import Program
from repro.suite.common import finish

#: MTU in payload words; packets longer than this get fragmented.
MTU_WORDS = 8


def build(mtu_words: int = MTU_WORDS) -> Program:
    """Build the ``frag`` kernel."""
    text = f"""
; frag: IP checksum + fragmentation decision (CommBench kernel).
start:
    recv %buf
    beqi %buf, 0, done
    load %len, [%buf]
    movi %sum, 0
    movi %i, 0
loop:
    bge %i, %len, fold
    addi %i, %i, 1
    add %addr, %buf, %i
    load %w, [%addr]
    ; add both 16-bit halves of the word
    shri %hiw, %w, 16
    andi %low, %w, 0xFFFF
    add %sum, %sum, %hiw
    add %sum, %sum, %low
    ctx
    br loop
fold:
    ; fold carries twice: sum = (sum & 0xFFFF) + (sum >> 16)
    shri %c1, %sum, 16
    andi %sum, %sum, 0xFFFF
    add %sum, %sum, %c1
    shri %c2, %sum, 16
    andi %sum, %sum, 0xFFFF
    add %sum, %sum, %c2
    xori %sum, %sum, 0xFFFF
    ; fragment count = ceil(len / MTU) via repeated subtraction
    movi %frags, 0
    mov %rem, %len
count:
    beqi %rem, 0, emit
    addi %frags, %frags, 1
    blti %rem, {mtu_words}, drained
    subi %rem, %rem, {mtu_words}
    br count
drained:
    movi %rem, 0
    br count
emit:
    add %out, %buf, %len
    store %sum, [%out + 1]
    store %frags, [%out + 2]
    send %buf
    br start
done:
    halt
"""
    return finish(text, "frag")
