"""``url`` -- URL pattern matching (NetBench).

Scans the payload for the byte pattern ``"GET "`` (held in four hoisted
pattern registers) at word-aligned byte positions, counting matches of the
first byte and full four-byte matches.  Byte extraction is shift/mask work;
the kernel is load-per-word with a voluntary ``ctx`` each word, giving the
~10% CSB density the paper reports.
"""

from __future__ import annotations

from typing import List

from repro.ir.program import Program
from repro.suite.common import finish

#: "GET " as byte values.
PATTERN = [0x47, 0x45, 0x54, 0x20]


def build() -> Program:
    """Build the ``url`` kernel."""
    parts: List[str] = ["; url: byte-pattern scan over the payload.\n"]
    for i, b in enumerate(PATTERN):
        parts.append(f"    movi %p{i}, {b}\n")
    parts.append("start:\n")
    parts.append("    recv %buf\n")
    parts.append("    beqi %buf, 0, done\n")
    parts.append("    load %len, [%buf]\n")
    parts.append("    movi %hits, 0\n")
    parts.append("    movi %partial, 0\n")
    parts.append("    movi %i, 0\n")
    parts.append("wloop:\n")
    parts.append("    bge %i, %len, fin\n")
    parts.append("    addi %i, %i, 1\n")
    parts.append("    add %addr, %buf, %i\n")
    parts.append("    load %w, [%addr]\n")
    # Extract the word's four bytes once.
    for b in range(4):
        parts.append(f"    shri %b{b}, %w, {8 * b}\n")
        parts.append(f"    andi %b{b}, %b{b}, 0xFF\n")
    # First-byte hits at any position.
    for b in range(4):
        parts.append(f"    bne %b{b}, %p0, nf{b}\n")
        parts.append("    addi %partial, %partial, 1\n")
        parts.append(f"nf{b}:\n    nop\n")
    # Full in-word match at position 0 (bytes 0..3 == pattern).
    parts.append("    bne %b0, %p0, nw\n")
    parts.append("    bne %b1, %p1, nw\n")
    parts.append("    bne %b2, %p2, nw\n")
    parts.append("    bne %b3, %p3, nw\n")
    parts.append("    addi %hits, %hits, 1\n")
    parts.append("nw:\n")
    parts.append("    ctx\n")
    parts.append("    br wloop\n")
    parts.append("fin:\n")
    parts.append("    add %out, %buf, %len\n")
    parts.append("    store %hits, [%out + 1]\n")
    parts.append("    store %partial, [%out + 2]\n")
    parts.append("    send %buf\n")
    parts.append("    br start\n")
    parts.append("done:\n    halt\n")
    return finish("".join(parts), "url")
