"""Per-thread analysis bundle: the slot/flow-edge model of live ranges.

Everything the intra-thread allocator needs to split and recolor live
ranges is precomputed here, once per thread:

* **slots** -- a live range *occupies* instruction slot ``i`` when it is
  live into ``i`` or defined at ``i``.  Pieces of a split live range are
  sets of slots.
* **flow edges** -- for a live range ``v``, a control-flow edge ``(i, j)``
  *carries* ``v`` when ``i`` and ``j`` are both occupied and ``v`` is live
  into ``j``.  A piece change across a carrying edge costs one ``mov``.
* **slot occupancy** -- which ranges occupy each slot, used for piece
  interference.  Two pieces of different ranges interfere when they
  co-occupy a slot, *except* the def-vs-dying-use pair: a range defined at
  ``i`` does not interfere with a range whose last use is at ``i`` (the
  read happens before the write, so they may share a register).
* **CSB facts** -- which ranges are live across which CSBs; a piece holding
  a range at a CSB slot it is live across must sit in a private register.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from repro.cfg.liveness import Liveness, compute_liveness
from repro.cfg.nsr import NsrInfo, compute_nsr
from repro.cfg.webs import rename_webs
from repro.igraph.interference import InterferenceGraphs, build_interference
from repro.ir.operands import Reg
from repro.ir.program import Program


def true_conflict(
    a: Reg, b: Reg, defs: FrozenSet[Reg], dying: FrozenSet[Reg]
) -> bool:
    """Do co-occupants ``a`` and ``b`` of one slot truly conflict?

    The single definition of the def-vs-dying-use exception, shared by
    :meth:`ThreadAnalysis.interferes_at`, the reference ``conflicts_at``
    builder below, and (as mask formulas checked against this predicate
    by the tests) the bitset kernel in :mod:`repro.core.dense` -- so the
    implementations cannot drift.

    ``defs``/``dying`` are the slot's def and dying-use sets.  The only
    co-occupancy that is not a conflict is a def against a range dying at
    the same instruction (read-before-write); simultaneous writes always
    conflict.
    """
    if a == b:
        return False
    if a in defs and b in defs:
        return True
    if a in defs and b in dying:
        return False
    if b in defs and a in dying:
        return False
    return True


@dataclass
class ThreadAnalysis:
    """All static facts about one thread's program.

    Attributes:
        program: the analysed (virtual-register) program.
        liveness: per-instruction liveness.
        nsr: non-switch regions and boundary/internal classification.
        graphs: GIG / BIG / IIGs.
        slots: live range -> occupied instruction slots.
        flow_edges: live range -> carrying control-flow edges ``(i, j)``.
        occupants: slot -> ranges occupying it (sorted for determinism).
        live_across: CSB index -> ranges live across it.
        csb_slots_of: live range -> CSB slots it is live across
            (program entry is represented by slot ``-1`` when the range is
            live at entry).
        defs_at: slot -> ranges defined there (several for burst loads).
        dying_at: slot -> ranges whose last use is at that slot.
    """

    program: Program
    liveness: Liveness
    nsr: NsrInfo
    graphs: InterferenceGraphs
    slots: Dict[Reg, FrozenSet[int]]
    flow_edges: Dict[Reg, Tuple[Tuple[int, int], ...]]
    occupants: Dict[int, Tuple[Reg, ...]]
    live_across: Dict[int, FrozenSet[Reg]]
    csb_slots_of: Dict[Reg, FrozenSet[int]]
    defs_at: Dict[int, FrozenSet[Reg]]
    dying_at: Dict[int, FrozenSet[Reg]]
    #: Per range: every (slot, other_range) pair that truly conflicts
    #: (precomputed so the allocator's hot loop is pure dict/set lookups).
    conflicts_at: Dict[Reg, Tuple[Tuple[int, "Reg"], ...]] = None  # type: ignore[assignment]
    #: Lazy per-slot regrouping of ``conflicts_at`` (see
    #: :meth:`conflicts_by_slot`); never compared or printed.
    _conflict_slot_index: Dict[
        Reg, Dict[int, Tuple[Tuple[int, "Reg"], ...]]
    ] = field(default_factory=dict, repr=False, compare=False)
    #: Lazy per-pair regrouping of ``conflicts_at`` (see
    #: :meth:`conflict_pairs`); never compared or printed.
    _conflict_pair_index: Dict[
        Tuple["Reg", "Reg"], Tuple[int, ...]
    ] = field(default=None, repr=False, compare=False)  # type: ignore[assignment]
    #: Bitmask companion built by the dense kernels
    #: (:class:`repro.core.dense.DenseAnalysisIndex`); ``None`` for
    #: reference-built analyses.  Never compared or printed -- the
    #: comparable fields above are bit-identical across implementations.
    dense: object = field(default=None, repr=False, compare=False)

    @property
    def all_regs(self) -> List[Reg]:
        return sorted(self.slots, key=str)

    def conflicts_by_slot(
        self, reg: Reg
    ) -> Dict[int, Tuple[Tuple[int, "Reg"], ...]]:
        """``conflicts_at[reg]`` regrouped by slot, built on first use.

        Each value keeps the ``(slot, other)`` pairs in their original
        ``conflicts_at`` order, so walking the groups for an increasing
        slot sequence replays the exact subsequence a linear scan of
        ``conflicts_at[reg]`` filtered to those slots would visit --
        which is what lets the allocator's piece probes skip the slots a
        split piece does not own without changing any iteration order.
        """
        index = self._conflict_slot_index.get(reg)
        if index is None:
            index = {}
            for pair in self.conflicts_at.get(reg, ()):
                index.setdefault(pair[0], []).append(pair)
            index = {s: tuple(pairs) for s, pairs in index.items()}
            self._conflict_slot_index[reg] = index
        return index

    def conflict_pairs(self) -> Dict[Tuple["Reg", "Reg"], Tuple[int, ...]]:
        """Each unordered conflicting range pair once, with its slots.

        ``conflicts_at`` records every conflict in both directions; this
        deduplicates to ``(a, b)`` with ``str(a) < str(b)`` and collects
        the ascending slot list where the pair truly conflicts.  Built on
        first use and cached -- context validation sweeps it after every
        committed reduction step, and for unsplit ranges one color
        comparison per *pair* replaces one per (slot, pair) entry.
        """
        index = self._conflict_pair_index
        if index is None:
            dense = getattr(self, "dense", None)
            if dense is not None:
                # Re-derived from the liveness masks in index space, so
                # no per-pair str() or register hashing.
                regs = dense.dmap.regs
                index = {
                    (regs[ai], regs[bi]): tuple(slots)
                    for (ai, bi), slots in dense.conflict_pair_slots().items()
                }
            else:
                grouped: Dict[Tuple["Reg", "Reg"], List[int]] = {}
                for a, pairs in self.conflicts_at.items():
                    sa = str(a)
                    for s, b in pairs:
                        if sa < str(b):
                            grouped.setdefault((a, b), []).append(s)
                index = {k: tuple(v) for k, v in grouped.items()}
            self._conflict_pair_index = index
        return index

    def interferes_at(self, a: Reg, b: Reg, slot: int) -> bool:
        """Do ranges ``a`` and ``b`` truly conflict at ``slot``?

        Both are assumed to occupy ``slot``.  See :func:`true_conflict`
        for the def-vs-dying-use exception rule.
        """
        return true_conflict(
            a,
            b,
            self.defs_at.get(slot, frozenset()),
            self.dying_at.get(slot, frozenset()),
        )

    def nsr_of_slot(self, slot: int) -> int:
        """NSR id of a non-CSB slot; -1 for CSB slots."""
        rid = self.nsr.nsr_of[slot]
        return -1 if rid is None else rid


def analyze_thread(program: Program) -> ThreadAnalysis:
    """Compute the full analysis bundle for one thread.

    The program is first *web-renamed* (:mod:`repro.cfg.webs`) so every
    live range is one variable, the representation the paper assumes; all
    downstream artifacts (contexts, rewritten code) refer to the renamed
    program available as ``analysis.program``.

    Implementation dispatch happens inside :func:`compute_liveness`
    (``REPRO_ANALYSIS`` / ``--analysis-impl``): a dense-built liveness
    carries a bitmask payload, and this function then finishes the
    bundle with the bitset kernels of :mod:`repro.core.dense`; otherwise
    the reference set-based construction below runs.  Both produce
    bit-identical analyses, iteration orders included.
    """
    program = rename_webs(program)
    liveness = compute_liveness(program)
    nsr = compute_nsr(liveness)
    graphs = build_interference(liveness, nsr)
    if getattr(liveness, "_dense", None) is not None:
        from repro.core.dense import finish_analysis_dense

        return finish_analysis_dense(program, liveness, nsr, graphs)
    n = len(program.instrs)

    slots: Dict[Reg, Set[int]] = {}
    for i, instr in enumerate(program.instrs):
        for reg in liveness.live_in[i]:
            slots.setdefault(reg, set()).add(i)
        for reg in instr.defs:
            slots.setdefault(reg, set()).add(i)
        for reg in instr.uses:
            slots.setdefault(reg, set())  # dead-use safety: still a node

    flow_edges: Dict[Reg, List[Tuple[int, int]]] = {r: [] for r in slots}
    for i in range(n):
        for j in program.successors(i):
            for reg in liveness.live_in[j]:
                if i in slots.get(reg, ()):
                    flow_edges[reg].append((i, j))

    occupants: Dict[int, List[Reg]] = {}
    for reg, ss in slots.items():
        for s in ss:
            occupants.setdefault(s, []).append(reg)

    live_across: Dict[int, FrozenSet[Reg]] = {
        c: liveness.live_across_csb(c) for c in nsr.csbs
    }
    csb_slots_of: Dict[Reg, Set[int]] = {r: set() for r in slots}
    for c, regs in live_across.items():
        for reg in regs:
            csb_slots_of[reg].add(c)
    for reg in liveness.entry_live():
        csb_slots_of[reg].add(-1)

    defs_at: Dict[int, FrozenSet[Reg]] = {}
    for i, instr in enumerate(program.instrs):
        if instr.defs:
            defs_at[i] = frozenset(instr.defs)

    dying_at: Dict[int, Set[Reg]] = {}
    for i, instr in enumerate(program.instrs):
        for reg in instr.uses:
            if reg not in liveness.live_out[i]:
                dying_at.setdefault(i, set()).add(reg)

    empty: FrozenSet[Reg] = frozenset()
    conflicts_at: Dict[Reg, List[Tuple[int, Reg]]] = {r: [] for r in slots}
    for s, occ in occupants.items():
        defs = defs_at.get(s, empty)
        dying = dying_at.get(s, empty)
        for a in occ:
            for b in occ:
                if true_conflict(a, b, defs, dying):
                    conflicts_at[a].append((s, b))

    return ThreadAnalysis(
        program=program,
        liveness=liveness,
        nsr=nsr,
        graphs=graphs,
        slots={r: frozenset(s) for r, s in slots.items()},
        flow_edges={r: tuple(sorted(e)) for r, e in flow_edges.items()},
        occupants={
            s: tuple(sorted(rs, key=str)) for s, rs in occupants.items()
        },
        live_across=live_across,
        csb_slots_of={r: frozenset(s) for r, s in csb_slots_of.items()},
        defs_at=defs_at,
        dying_at={s: frozenset(rs) for s, rs in dying_at.items()},
        conflicts_at={
            r: tuple(sorted(pairs, key=lambda p: (p[0], str(p[1]))))
            for r, pairs in conflicts_at.items()
        },
    )
