"""One-call public API: allocate a PU's threads end to end.

:func:`allocate_programs` validates and analyses every thread program,
runs the inter-thread allocator, lays out physical registers and rewrites
each program.  The returned :class:`AllocationOutcome` carries everything
downstream consumers need: rewritten programs for the simulator, the
register layout for the paranoid safety checker, and per-thread statistics
for the experiment harnesses.
"""

from __future__ import annotations

import contextlib
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.analysis import ThreadAnalysis
from repro.core.assign import RegisterAssignment, assign_physical
from repro.core.cache import get_cache
from repro.core.inter import InterThreadResult, allocate_threads
from repro.core.rewrite import rewrite_program
from repro.errors import AllocationError, TransientError
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import deadline as dl
from repro.resilience import faults, guard
from repro.resilience.deadline import Deadline


@contextlib.contextmanager
def _phase(em, name: str, **fields) -> Iterator[None]:
    """An ``em.span`` that also feeds the per-phase timing histogram.

    Phase durations are sub-millisecond for small PUs, so the histogram
    uses the fractional :data:`~repro.obs.metrics.TIMING_BUCKETS` rather
    than the integer-oriented default bounds.
    """
    if not em.enabled:
        yield
        return
    start = time.perf_counter()
    try:
        with em.span(name, **fields):
            yield
    finally:
        obs_metrics.registry().histogram(
            "alloc.phase_seconds",
            bounds=obs_metrics.TIMING_BUCKETS,
            phase=name,
        ).observe(time.perf_counter() - start)


@dataclass
class AllocationOutcome:
    """Everything produced by the full allocation pipeline."""

    source_programs: List[Program]
    programs: List[Program]
    analyses: List[ThreadAnalysis]
    inter: InterThreadResult
    assignment: RegisterAssignment

    @property
    def sgr(self) -> int:
        return self.inter.sgr

    @property
    def total_registers(self) -> int:
        return self.inter.total_registers

    @property
    def total_moves(self) -> int:
        return self.inter.total_moves

    def summary(self) -> str:
        lines = [
            f"Nreg={self.inter.nreg}  total used="
            f"{self.total_registers}  SGR={self.sgr}  moves={self.total_moves}"
        ]
        for t, m in zip(self.inter.threads, self.assignment.maps):
            lines.append(
                f"  {t.name}: PR={t.pr} SR={t.sr} "
                f"private=[{m.private_base}, {m.private_base + m.pr}) "
                f"moves={t.move_cost}"
            )
        return "\n".join(lines)


def _analyze_all(cache, programs: Sequence[Program], jobs: int):
    """One analyze attempt; carries the ``pipeline.analyze`` fault site."""
    spec = faults.fire("pipeline.analyze", threads=len(programs))
    if spec is not None:
        raise TransientError("injected transient analysis failure")
    if jobs > 1:
        pairs = cache.warm_many(programs, jobs=jobs)
        return [a for a, _ in pairs]
    return [cache.analyze(p) for p in programs]


def allocate_programs(
    programs: Sequence[Program],
    nreg: int,
    check_init: bool = True,
    policy: str = "greedy",
    jobs: int = 1,
    deadline: Optional[Deadline] = None,
) -> AllocationOutcome:
    """Allocate registers for one PU running ``programs`` on its threads.

    Args:
        programs: one virtual-register program per hardware thread.
        nreg: the PU's physical register count.
        check_init: also verify no register is read uninitialised.
        policy: inter-thread reduction policy (``greedy`` or the
            ``round_robin`` ablation).
        jobs: analyze cache misses in this many worker processes
            (``repro.harness.sweep``); 1 keeps everything in-process.
        deadline: optional cooperative wall-clock budget; checked at
            every phase boundary, raising
            :class:`~repro.errors.DeadlineExceeded` once spent.

    Analysis and bounds are memoized per program content through
    :func:`repro.core.cache.get_cache`; repeated allocations of the
    same thread programs (sweeps over ``nreg``, spill-fallback retries)
    skip straight to the inter-thread phase.  Transient analysis
    failures are retried a bounded number of times
    (:func:`repro.resilience.guard.retry_transient`) before surfacing.
    """
    cache = get_cache()
    em = obs.get_emitter()
    with _phase(
        em, "allocate", threads=len(programs), nreg=nreg, policy=policy
    ):
        dl.check(deadline, "validate")
        with _phase(em, "validate"):
            for program in programs:
                validate_program(program, check_init=check_init)
        dl.check(deadline, "analyze")
        with _phase(em, "analyze"):
            analyses = guard.retry_transient(
                lambda: _analyze_all(cache, programs, jobs),
                label="pipeline.analyze",
            )
        dl.check(deadline, "bounds")
        with _phase(em, "bounds"):
            bounds = [cache.bounds(p) for p in programs]
        dl.check(deadline, "inter")
        with _phase(em, "inter"):
            inter = allocate_threads(analyses, nreg, policy=policy, bounds=bounds)
        dl.check(deadline, "assign")
        with _phase(em, "assign"):
            assignment = assign_physical(inter)
        dl.check(deadline, "rewrite")
        with _phase(em, "rewrite"):
            rewritten = [
                rewrite_program(t.analysis, t.context, m)
                for t, m in zip(inter.threads, assignment.maps)
            ]
            for program in rewritten:
                validate_program(program, check_init=False)
    return AllocationOutcome(
        source_programs=list(programs),
        programs=rewritten,
        analyses=analyses,
        inter=inter,
        assignment=assignment,
    )


def allocate_programs_sweep(
    programs: Sequence[Program],
    budgets: Sequence[int],
    check_init: bool = True,
    policy: str = "greedy",
    jobs: int = 1,
    deadline: Optional[Deadline] = None,
) -> Dict[int, AllocationOutcome]:
    """Allocate one PU's threads at EVERY budget in one shared descent.

    The Figure-8 reduction trajectory is budget-independent (the budget
    only stops it), so instead of one fresh :func:`allocate_programs`
    per budget this validates and analyses the threads once, runs ONE
    :class:`~repro.core.inter.SharedDescent` (memoized per thread mix in
    :func:`repro.core.cache.get_cache`, so repeated sweeps replay in
    O(1)), and materializes a full :class:`AllocationOutcome` per
    distinct budget.  Every outcome is byte-identical to what
    ``allocate_programs(programs, nreg=b)`` returns at that budget --
    same PR/SR splits, move costs, register maps, and rewritten-program
    fingerprints.

    Returns a dict keyed by budget, in the (deduplicated) order given.
    The whole call runs under one ``alloc.descent`` span with an
    ``alloc.descent_budget`` event per materialized budget; the deadline
    is checked at every phase boundary and between budgets.

    Raises:
        AllocationError: some budget is infeasible even at the threads'
            lower bounds -- the error (message and ``requirement``
            attribute) is identical to the fresh-run error at that
            budget, and the largest budgets raise first.
    """
    cache = get_cache()
    em = obs.get_emitter()
    wanted = list(dict.fromkeys(budgets))
    outcomes: Dict[int, AllocationOutcome] = {}
    with _phase(
        em,
        "alloc.descent",
        threads=len(programs),
        budgets=sorted(wanted, reverse=True),
        policy=policy,
    ):
        dl.check(deadline, "validate")
        with _phase(em, "validate"):
            for program in programs:
                validate_program(program, check_init=check_init)
        dl.check(deadline, "analyze")
        with _phase(em, "analyze"):
            analyses = guard.retry_transient(
                lambda: _analyze_all(cache, programs, jobs),
                label="pipeline.analyze",
            )
        dl.check(deadline, "bounds")
        with _phase(em, "bounds"):
            for program in programs:
                cache.bounds(program)
        dl.check(deadline, "descent")
        inters: Dict[int, InterThreadResult] = {}
        with _phase(em, "descent"):
            descent = cache.descent(programs, policy=policy)
            for nreg in sorted(wanted, reverse=True):
                dl.check(deadline, f"descent@{nreg}")
                inter = descent.result(nreg)
                inters[nreg] = inter
                if em.enabled:
                    em.emit(
                        "alloc.descent_budget",
                        nreg=nreg,
                        total_registers=inter.total_registers,
                        total_moves=inter.total_moves,
                        steps=descent.steps,
                    )
        for nreg in wanted:
            inter = inters[nreg]
            dl.check(deadline, f"assign@{nreg}")
            with _phase(em, "assign", nreg=nreg):
                assignment = assign_physical(inter)
            dl.check(deadline, f"rewrite@{nreg}")
            with _phase(em, "rewrite", nreg=nreg):
                rewritten = [
                    rewrite_program(t.analysis, t.context, m)
                    for t, m in zip(inter.threads, assignment.maps)
                ]
                for program in rewritten:
                    validate_program(program, check_init=False)
            outcomes[nreg] = AllocationOutcome(
                source_programs=list(programs),
                programs=rewritten,
                analyses=analyses,
                inter=inter,
                assignment=assignment,
            )
    return outcomes


@dataclass
class HybridOutcome:
    """Result of :func:`allocate_with_spill_fallback`.

    ``spilled_per_thread`` maps thread index -> number of values the
    pre-spill pass pushed to memory (empty when no spilling was needed,
    in which case the result equals a plain :func:`allocate_programs`).
    """

    outcome: AllocationOutcome
    spilled_per_thread: Dict[int, int] = field(default_factory=dict)

    @property
    def total_spilled(self) -> int:
        return sum(self.spilled_per_thread.values())


def allocate_with_spill_fallback(
    programs: Sequence[Program],
    nreg: int,
    check_init: bool = True,
    max_spill_rounds: int = 16,
    jobs: int = 1,
    deadline: Optional[Deadline] = None,
) -> HybridOutcome:
    """Cross-thread allocation with graceful degradation.

    When even the lower bounds of the threads exceed ``nreg`` (the plain
    pipeline raises :class:`AllocationError`), the hungriest thread is
    pre-spilled -- Chaitin-style spill code lowers its register pressure
    while the program stays in virtual registers -- and allocation is
    retried: the ``alloc.greedy_to_spill`` rung of the degradation
    ladder.  Spills go to per-thread scratch areas; each spill access
    costs a memory trip, so this is strictly a fallback, but every input
    that a 3-registers-per-instruction machine can run at all eventually
    fits.  Error messages name the *original* thread program (spill
    rounds rewrite ``current[idx]``) and the failing round.
    """
    from repro.baseline.chaitin import (
        DEFAULT_SPILL_BASE,
        spill_until_colorable,
    )
    from repro.baseline.single_thread import SPILL_AREA_STRIDE

    cache = get_cache()
    current = [p.copy() for p in programs]
    original_names = [p.name for p in programs]
    spilled: Dict[int, int] = {}
    for round_no in range(1, max_spill_rounds + 1):
        dl.check(deadline, f"spill-round-{round_no}")
        try:
            outcome = allocate_programs(
                current,
                nreg,
                check_init=check_init,
                jobs=jobs,
                deadline=deadline,
            )
            return HybridOutcome(outcome=outcome, spilled_per_thread=spilled)
        except AllocationError:
            pass
        # The failed allocate_programs call above already populated the
        # cache, so only threads rewritten by a previous spill round pay
        # for re-analysis here.
        bounds = [cache.bounds(p) for p in current]
        # Relieve the thread with the largest private-register floor.
        idx = max(range(len(current)), key=lambda i: bounds[i].min_pr)
        target = max(bounds[idx].min_r - 2, 3)
        if target >= bounds[idx].min_r:
            raise AllocationError(
                f"cannot reduce {original_names[idx]} below "
                f"{bounds[idx].min_r} registers "
                f"(spill round {round_no}/{max_spill_rounds})"
            )
        guard.record_degradation(
            "alloc.greedy_to_spill",
            reason=f"nreg={nreg} infeasible; pre-spilling "
            f"{original_names[idx]} toward {target} registers",
            thread=idx,
            round=round_no,
        )
        virtual, _, stats = spill_until_colorable(
            current[idx],
            target,
            spill_base=DEFAULT_SPILL_BASE + idx * SPILL_AREA_STRIDE,
        )
        # Check progress against THIS round's spill stats before folding
        # them into the running total -- reading ``spilled[idx]`` after
        # the update would see the previous rounds' work and miss a
        # round that spilled nothing.
        if not stats.spilled:
            raise AllocationError(
                f"spill fallback made no progress on {original_names[idx]} "
                f"in round {round_no}/{max_spill_rounds}"
            )
        current[idx] = virtual
        spilled[idx] = spilled.get(idx, 0) + len(set(stats.spilled))
    raise AllocationError(
        f"spill fallback did not converge in {max_spill_rounds} rounds "
        f"(threads spilled so far: "
        f"{ {original_names[i]: n for i, n in sorted(spilled.items())} })"
    )
