"""The independent allocation verifier.

:func:`verify_outcome` re-checks an :class:`AllocationOutcome` from
first principles, sharing **no code** with the allocator decisions it
audits: the layout checks are plain arithmetic over the published
register windows, the safety check recomputes liveness of the
*rewritten* programs with the reference set-based worklist (never the
dense kernels, whatever the process default), and the semantic check is
a differential run of source vs rewritten programs on the reference
interpreter with the paranoid checker armed.  The oracle runs execute
under :func:`repro.resilience.faults.suspended`, so a chaos scenario
injecting faults into the system under test cannot corrupt the
verifier's ground truth.

The checks, in order:

``layout.windows``
    every thread's private window and the shared window lie inside
    ``[0, Nreg)``, the private windows are pairwise disjoint, and none
    of them overlaps the shared window.
``layout.budget``
    ``sum_i PR_i + SGR <= Nreg`` and ``SGR == max_i SR_i`` -- the
    paper's global requirement, recomputed from the per-thread facts.
``rewrite.complete``
    rewriting left no virtual register behind: every register operand
    of every rewritten program is physical.
``rewrite.ownership``
    every physical register an instruction of thread ``i`` touches is
    inside thread ``i``'s private window or the shared window.
``safety.csb_private``
    the paper's core invariant: every value live across a
    context-switch boundary of thread ``i`` sits in a *private*
    register of thread ``i``.  Liveness is recomputed here with the
    reference implementation; a bug in the dense kernels cannot
    vouch for itself.
``semantics.differential``
    the rewritten programs are observably equivalent to their sources:
    same send queues and (non-scratch) store traces over a shared
    deterministic packet workload, with paranoid mode re-checking
    window ownership dynamically.

A failed check lands in the returned :class:`VerificationReport`;
``strict=True`` (the default) additionally raises
:class:`~repro.errors.VerificationError` naming every failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.pipeline import AllocationOutcome
from repro.errors import VerificationError
from repro.ir.operands import PhysReg, Reg
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics


@dataclass(frozen=True)
class Check:
    """One verifier check: its name, verdict, and failure detail."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class VerificationReport:
    """Everything :func:`verify_outcome` concluded."""

    checks: List[Check]

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> List[Check]:
        return [c for c in self.checks if not c.ok]

    def summary(self) -> str:
        lines = ["verification: " + ("PASS" if self.ok else "FAIL")]
        for c in self.checks:
            mark = "ok " if c.ok else "FAIL"
            lines.append(f"  [{mark}] {c.name}" + (f": {c.detail}" if c.detail else ""))
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checks": [
                {"name": c.name, "ok": c.ok, "detail": c.detail}
                for c in self.checks
            ],
        }

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        details = "; ".join(
            f"{c.name}: {c.detail or 'failed'}" for c in self.failures
        )
        raise VerificationError(f"allocation verification failed -- {details}")


def _check_windows(outcome: AllocationOutcome) -> Check:
    a = outcome.assignment
    problems: List[str] = []
    s0, s1 = a.shared_registers()
    if not (0 <= s0 <= s1 <= a.nreg):
        problems.append(f"shared window [{s0}, {s1}) outside [0, {a.nreg})")
    windows: List[Tuple[int, int, int]] = []
    for tid, m in enumerate(a.maps):
        p0, p1 = m.private_registers()
        if not (0 <= p0 <= p1 <= a.nreg):
            problems.append(
                f"thread {tid} private window [{p0}, {p1}) "
                f"outside [0, {a.nreg})"
            )
        if p1 > s0 and s1 > p0:
            problems.append(
                f"thread {tid} private window [{p0}, {p1}) overlaps "
                f"shared window [{s0}, {s1})"
            )
        windows.append((p0, p1, tid))
    windows.sort()
    for (a0, a1, ta), (b0, b1, tb) in zip(windows, windows[1:]):
        if b0 < a1:
            problems.append(
                f"private windows of threads {ta} and {tb} overlap: "
                f"[{a0}, {a1}) vs [{b0}, {b1})"
            )
    return Check("layout.windows", not problems, "; ".join(problems))


def _check_budget(outcome: AllocationOutcome) -> Check:
    a = outcome.assignment
    total_private = sum(m.pr for m in a.maps)
    max_sr = max((m.sr for m in a.maps), default=0)
    problems: List[str] = []
    if a.sgr != max_sr:
        problems.append(f"SGR={a.sgr} but max per-thread SR is {max_sr}")
    if total_private + a.sgr > a.nreg:
        problems.append(
            f"sum PR_i + SGR = {total_private} + {a.sgr} exceeds "
            f"Nreg={a.nreg}"
        )
    return Check("layout.budget", not problems, "; ".join(problems))


def _phys_index(reg: Reg) -> int:
    """Physical index of a register operand, or -1 for virtuals."""
    return reg.index if isinstance(reg, PhysReg) else -1


def _check_rewrite(outcome: AllocationOutcome) -> Tuple[Check, Check]:
    a = outcome.assignment
    s0, s1 = a.shared_registers()
    virtuals: List[str] = []
    escapes: List[str] = []
    for tid, program in enumerate(outcome.programs):
        p0, p1 = a.maps[tid].private_registers()
        for pc, instr in enumerate(program.instrs):
            for reg in instr.regs:
                idx = _phys_index(reg)
                if idx < 0:
                    virtuals.append(
                        f"thread {tid} pc {pc}: virtual register {reg}"
                    )
                elif not (p0 <= idx < p1 or s0 <= idx < s1):
                    escapes.append(
                        f"thread {tid} pc {pc}: $r{idx} outside private "
                        f"[{p0}, {p1}) and shared [{s0}, {s1})"
                    )
    return (
        Check("rewrite.complete", not virtuals, "; ".join(virtuals[:4])),
        Check("rewrite.ownership", not escapes, "; ".join(escapes[:4])),
    )


def _check_csb_private(outcome: AllocationOutcome) -> Check:
    # Recompute liveness of the REWRITTEN programs with the reference
    # set-based worklist, whatever the process-wide default is: the
    # invariant check must not trust the kernels under audit.
    from repro.cfg.liveness import compute_liveness
    from repro.core.dense import set_default_analysis_impl

    a = outcome.assignment
    problems: List[str] = []
    previous = set_default_analysis_impl("reference")
    try:
        for tid, program in enumerate(outcome.programs):
            p0, p1 = a.maps[tid].private_registers()
            liveness = compute_liveness(program)
            for pc, instr in enumerate(program.instrs):
                if not instr.is_csb:
                    continue
                for reg in liveness.live_across_csb(pc):
                    idx = _phys_index(reg)
                    if not p0 <= idx < p1:
                        problems.append(
                            f"thread {tid} pc {pc} ({instr.opcode.name}): "
                            f"{reg} is live across the CSB but not in the "
                            f"private window [{p0}, {p1})"
                        )
    finally:
        set_default_analysis_impl(previous)
    return Check("safety.csb_private", not problems, "; ".join(problems[:4]))


def _check_semantics(
    outcome: AllocationOutcome, packets_per_thread: int
) -> Check:
    from repro.resilience import faults
    from repro.sim.run import (
        describe_mismatch,
        outputs_match,
        run_reference,
        run_threads,
    )

    nreg = outcome.assignment.nreg
    # The oracle (and the allocated re-run it is compared against) must
    # see the real machine, not the chaos scenario's injected faults.
    with faults.suspended():
        reference = run_reference(
            outcome.source_programs,
            packets_per_thread=packets_per_thread,
            nreg=nreg,
            engine="reference",
        )
        allocated = run_threads(
            outcome.programs,
            packets_per_thread=packets_per_thread,
            nreg=nreg,
            assignment=outcome.assignment,
            engine="reference",
        )
    if outputs_match(reference, allocated):
        return Check("semantics.differential", True)
    return Check(
        "semantics.differential",
        False,
        describe_mismatch(reference, allocated),
    )


def verify_outcome(
    outcome: AllocationOutcome,
    check_semantics: bool = True,
    packets_per_thread: int = 8,
    strict: bool = True,
) -> VerificationReport:
    """Independently re-check ``outcome``; see the module docstring.

    Args:
        outcome: the allocation to audit.
        check_semantics: also run the differential source-vs-rewritten
            simulation (the most expensive check; static checks always
            run).
        packets_per_thread: workload size for the differential runs.
        strict: raise :class:`VerificationError` on any failed check
            (the report is still returned to non-strict callers).
    """
    checks = [_check_windows(outcome), _check_budget(outcome)]
    checks.extend(_check_rewrite(outcome))
    checks.append(_check_csb_private(outcome))
    if check_semantics:
        checks.append(_check_semantics(outcome, packets_per_thread))
    report = VerificationReport(checks=checks)
    em = obs.get_emitter()
    if em.enabled:
        em.emit("verify.outcome", **report.to_dict())
        reg = obs_metrics.registry()
        reg.counter("verify.runs").inc()
        if not report.ok:
            reg.counter("verify.failures").inc()
    if strict:
        report.raise_if_failed()
    return report
