"""Dense-index bitset kernels for the cold analysis path.

PR 3 made *warm* allocation cheap by caching whole analyses; this module
makes the cache *miss* cheap.  Every per-program analysis pass -- the
liveness fixpoint, interference-graph construction, and the
slot/occupant/conflict model behind the intra-thread allocator -- has a
rewrite here that renumbers live ranges and instruction slots to
contiguous ints and runs on pure-Python big-int bitmasks instead of sets
of rich operand objects.  No new dependencies: a Python ``int`` is the
bit vector.

The layout invariant everything rests on: :class:`DenseMap` numbers
registers in ``str``-sorted order, so **ascending bit order equals the
``str`` order** the reference implementation sorts by.  Expanding a mask
low-bit-first therefore reproduces every reference iteration order
(occupant tuples, ``conflicts_at`` pair order, tie-breaks in the
coloring heuristics) without ever calling ``sorted``.  That is what
makes the two implementations bit-identical rather than merely
equivalent: same :class:`~repro.core.analysis.ThreadAnalysis` contents,
same allocations, same benchmark JSON.

Implementation selection mirrors :mod:`repro.sim.engine`: the process
default comes from ``REPRO_ANALYSIS`` (``dense``, the default, or
``reference``), is changed via :func:`set_default_analysis_impl` (the
CLI's ``--analysis-impl``), and is consulted once per analysis at
:func:`repro.cfg.liveness.compute_liveness`.  Everything downstream keys
off the presence of the :class:`DenseLiveness` payload the dense path
attaches, so one switch point keeps a whole analysis internally
consistent.

The conflict kernel encodes the paper's def-vs-dying-use exception (see
:func:`repro.core.analysis.true_conflict`) as three mask formulas.  For
an occupant ``a`` of slot ``s`` with occupant mask ``occ``, def mask
``defs`` and dying mask ``dying``::

    a in defs:   conf = (occ & ~(dying & ~defs)) & ~bit(a)
    a in dying:  conf = (occ & ~defs)            & ~bit(a)
    otherwise:   conf =  occ                     & ~bit(a)

``tests/test_dense.py`` checks this against the shared predicate over
every membership combination, and differentially checks whole analyses,
bounds and allocations against the reference implementation.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.cfg.liveness import Liveness
from repro.cfg.nsr import NsrInfo
from repro.igraph.graph import (
    UndirectedGraph,
    bit_indices,
    graph_from_dense,
    popcount,
)
from repro.igraph.interference import InterferenceGraphs
from repro.ir.operands import Reg
from repro.ir.program import Program

__all__ = [
    "ANALYSIS_IMPLS",
    "ENV_ANALYSIS",
    "DenseAnalysisIndex",
    "DenseLiveness",
    "DenseMap",
    "analysis_is_dense",
    "build_interference_dense",
    "compute_liveness_dense",
    "finish_analysis_dense",
    "get_default_analysis_impl",
    "mask_of_slots",
    "popcount",
    "set_default_analysis_impl",
]

#: Recognised analysis implementations.
ANALYSIS_IMPLS = ("dense", "reference")

#: Environment variable consulted once at import for the initial default.
ENV_ANALYSIS = "REPRO_ANALYSIS"


def _check_name(name: str) -> None:
    if name not in ANALYSIS_IMPLS:
        raise ValueError(
            f"unknown analysis implementation {name!r}; expected one of "
            f"{', '.join(ANALYSIS_IMPLS)}"
        )


def _initial_impl() -> str:
    name = os.environ.get(ENV_ANALYSIS, "dense")
    if name not in ANALYSIS_IMPLS:
        warnings.warn(
            f"{ENV_ANALYSIS}={name!r} is not one of "
            f"{', '.join(ANALYSIS_IMPLS)}; using 'dense'",
            RuntimeWarning,
            stacklevel=2,
        )
        return "dense"
    return name


_default_impl = _initial_impl()


def get_default_analysis_impl() -> str:
    """The implementation new analyses use (``dense`` or ``reference``)."""
    return _default_impl


def set_default_analysis_impl(name: str) -> str:
    """Set the process-wide analysis implementation; returns the previous
    one (so callers can restore it in a ``finally``)."""
    global _default_impl
    _check_name(name)
    previous = _default_impl
    _default_impl = name
    return previous


def analysis_is_dense() -> bool:
    """True when the dense kernels are the process default."""
    return _default_impl == "dense"


def mask_of_slots(slots: Iterable[int]) -> int:
    """Bitmask over instruction-slot indices."""
    m = 0
    for s in slots:
        m |= 1 << s
    return m


# ---------------------------------------------------------------------------
# Dense renumbering.
# ---------------------------------------------------------------------------
class DenseMap:
    """Contiguous renumbering of a program's registers.

    Registers are numbered in ``str``-sorted order, making ascending bit
    order identical to the reference implementation's deterministic sort
    order -- the invariant every bit-identity argument relies on.
    """

    __slots__ = ("regs", "index", "_frozen")

    def __init__(self, regs: Iterable[Reg]) -> None:
        self.regs: Tuple[Reg, ...] = tuple(sorted(set(regs), key=str))
        self.index: Dict[Reg, int] = {r: i for i, r in enumerate(self.regs)}
        #: mask -> frozenset memo; liveness reuses a handful of masks
        #: across many program points, so interning pays for itself.
        self._frozen: Dict[int, FrozenSet[Reg]] = {0: frozenset()}

    def __len__(self) -> int:
        return len(self.regs)

    def mask_of(self, regs: Iterable[Reg]) -> int:
        index = self.index
        m = 0
        for r in regs:
            m |= 1 << index[r]
        return m

    def expand(self, mask: int) -> List[Reg]:
        """Registers of ``mask``, ascending bit (== ``str``) order."""
        regs = self.regs
        return [regs[i] for i in bit_indices(mask)]

    def frozen(self, mask: int) -> FrozenSet[Reg]:
        """Memoized frozenset materialization of ``mask``."""
        f = self._frozen.get(mask)
        if f is None:
            f = frozenset(self.expand(mask))
            self._frozen[mask] = f
        return f


class DenseLiveness:
    """Bitmask payload attached to a dense-built :class:`Liveness`.

    Register masks are indexed by :class:`DenseMap` bit; slot masks are
    indexed by instruction slot.  Downstream passes (:mod:`repro.cfg.nsr`,
    :func:`build_interference_dense`, :func:`finish_analysis_dense`) key
    off this payload's presence instead of re-consulting the registry, so
    one analysis never mixes implementations.
    """

    __slots__ = (
        "dmap",
        "live_in",
        "live_out",
        "defs",
        "uses",
        "occ",
        "dying",
        "_slot_masks",
        "_occupied",
    )

    def __init__(
        self,
        dmap: DenseMap,
        live_in: List[int],
        live_out: List[int],
        defs: List[int],
        uses: List[int],
    ) -> None:
        self.dmap = dmap
        self.live_in = live_in
        self.live_out = live_out
        self.defs = defs
        self.uses = uses
        #: A range occupies slot ``i`` when live into it or defined there.
        self.occ = [li | d for li, d in zip(live_in, defs)]
        #: A range dies at ``i`` when used there but not live out.
        self.dying = [u & ~o for u, o in zip(uses, live_out)]
        self._slot_masks: Optional[List[int]] = None
        self._occupied: Dict[Reg, FrozenSet[int]] = {}

    def slot_masks(self) -> List[int]:
        """Per register (by dense index), the mask of occupied slots."""
        if self._slot_masks is None:
            sm = [0] * len(self.dmap)
            for i, m in enumerate(self.occ):
                bit = 1 << i
                while m:
                    low = m & -m
                    sm[low.bit_length() - 1] |= bit
                    m ^= low
            self._slot_masks = sm
        return self._slot_masks

    def occupied_frozen(self, reg: Reg) -> FrozenSet[int]:
        """Memoized occupied-slot frozenset (the fast path behind
        :func:`repro.cfg.liveness.occupied_slots`)."""
        f = self._occupied.get(reg)
        if f is None:
            i = self.dmap.index.get(reg)
            mask = self.slot_masks()[i] if i is not None else 0
            f = frozenset(bit_indices(mask))
            self._occupied[reg] = f
        return f


# ---------------------------------------------------------------------------
# Liveness.
# ---------------------------------------------------------------------------
def compute_liveness_dense(program: Program) -> Liveness:
    """The backward liveness worklist over bitmasks.

    Returns a :class:`Liveness` whose frozensets are materialized only at
    this API boundary (and interned through the :class:`DenseMap` memo);
    the raw masks ride along as the ``_dense`` payload.
    """
    instrs = program.instrs
    n = len(instrs)
    defs_l = [ins.defs for ins in instrs]
    uses_l = [ins.uses for ins in instrs]
    universe: set = set()
    for d in defs_l:
        universe.update(d)
    for u in uses_l:
        universe.update(u)
    dmap = DenseMap(universe)
    index = dmap.index

    def mask(regs: Tuple[Reg, ...]) -> int:
        m = 0
        for r in regs:
            m |= 1 << index[r]
        return m

    defs_m = [mask(d) for d in defs_l]
    uses_m = [mask(u) for u in uses_l]

    succs = [program.successors(i) for i in range(n)]
    preds: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        for s in succs[i]:
            preds[s].append(i)

    live_in = [0] * n
    live_out = [0] * n
    worklist = list(range(n))
    in_list = [True] * n
    while worklist:
        i = worklist.pop()
        in_list[i] = False
        out = 0
        for s in succs[i]:
            out |= live_in[s]
        new_in = (out & ~defs_m[i]) | uses_m[i]
        live_out[i] = out
        if new_in != live_in[i]:
            live_in[i] = new_in
            for p in preds[i]:
                if not in_list[p]:
                    in_list[p] = True
                    worklist.append(p)

    payload = DenseLiveness(dmap, live_in, live_out, defs_m, uses_m)
    frozen = dmap.frozen
    return Liveness(
        program=program,
        live_in=[frozen(m) for m in live_in],
        live_out=[frozen(m) for m in live_out],
        def_sets=[frozen(m) for m in defs_m],
        _dense=payload,
    )


# ---------------------------------------------------------------------------
# Interference graphs.
# ---------------------------------------------------------------------------
def build_interference_dense(
    liveness: Liveness, nsr: NsrInfo
) -> InterferenceGraphs:
    """GIG/BIG/IIG construction from adjacency bitmasks.

    Mirrors :func:`repro.igraph.interference.build_interference` exactly:
    the GIG gets every register as a node and the
    :func:`~repro.cfg.liveness.co_live_pairs` relation as edges (a def
    interferes with everything live-out plus the simultaneous-writes
    clique, entry-live registers form a clique); the BIG holds per-CSB
    cliques over boundary ranges; the IIGs carry GIG edges between
    internal ranges, asserting the paper's claim 2.
    """
    dl: DenseLiveness = liveness._dense  # type: ignore[assignment]
    dmap = dl.dmap
    regs = dmap.regs
    nregs = len(regs)
    n = len(liveness.program.instrs)

    adj = [0] * nregs
    entry_m = dl.live_in[0] if n else 0
    m = entry_m
    while m:
        low = m & -m
        adj[low.bit_length() - 1] |= entry_m & ~low
        m ^= low
    for i in range(n):
        d = dl.defs[i]
        if not d:
            continue
        out = dl.live_out[i]
        both = out | d
        m = d
        while m:
            low = m & -m
            adj[low.bit_length() - 1] |= both & ~low
            m ^= low
        m = out & ~d
        while m:
            low = m & -m
            adj[low.bit_length() - 1] |= d
            m ^= low
    gig = graph_from_dense(regs, (1 << nregs) - 1 if nregs else 0, adj)

    badj = [0] * nregs
    m = entry_m
    while m:
        low = m & -m
        badj[low.bit_length() - 1] |= entry_m & ~low
        m ^= low
    for c in nsr.csbs:
        am = dl.live_out[c] & ~dl.defs[c]
        m = am
        while m:
            low = m & -m
            badj[low.bit_length() - 1] |= am & ~low
            m ^= low
    boundary_mask = dmap.mask_of(nsr.boundary)
    big = graph_from_dense(regs, boundary_mask, badj)

    iigs: Dict[int, UndirectedGraph] = {
        rid: UndirectedGraph() for rid in range(nsr.n_regions)
    }
    for reg in nsr.internal:
        iigs[nsr.nsr_of_internal[reg]].add_node(reg)
    internal_mask = dmap.mask_of(nsr.internal)
    m = internal_mask
    while m:
        low = m & -m
        ai = low.bit_length() - 1
        m ^= low
        # Only pairs with the higher-indexed endpoint: each edge once, in
        # the reference's ``gig.edges()`` (str-sorted) order.
        pairs = adj[ai] & internal_mask & ~((low << 1) - 1)
        if not pairs:
            continue
        a = regs[ai]
        rid_a = nsr.nsr_of_internal[a]
        while pairs:
            lo2 = pairs & -pairs
            b = regs[lo2.bit_length() - 1]
            pairs ^= lo2
            rid_b = nsr.nsr_of_internal[b]
            if rid_a != rid_b:
                raise AssertionError(
                    f"internal ranges {a} (NSR {rid_a}) and {b} "
                    f"(NSR {rid_b}) interfere across regions; "
                    f"claim 2 violated"
                )
            iigs[rid_a].add_edge(a, b)

    return InterferenceGraphs(
        gig=gig,
        big=big,
        iigs=iigs,
        boundary=nsr.boundary,
        internal=nsr.internal,
    )


# ---------------------------------------------------------------------------
# The slot/occupant/conflict model.
# ---------------------------------------------------------------------------
class DenseAnalysisIndex:
    """Bitmask companion to a dense-built ``ThreadAnalysis``.

    Carries the register renumbering, per-register occupied-slot masks,
    and (built lazily, per register) the per-conflicting-range slot masks
    the allocation context's conflict probes answer from.
    """

    __slots__ = ("dmap", "_slot_masks", "_conflict_masks", "_dl", "_pairs")

    def __init__(
        self, dmap: DenseMap, slot_masks: List[int], dl: "DenseLiveness"
    ) -> None:
        self.dmap = dmap
        self._slot_masks = slot_masks
        self._conflict_masks: Dict[Reg, Dict[Reg, int]] = {}
        self._dl = dl
        self._pairs: Optional[Dict[Tuple[int, int], List[int]]] = None

    def slot_mask(self, reg: Reg) -> int:
        i = self.dmap.index.get(reg)
        return self._slot_masks[i] if i is not None else 0

    def conflict_masks(
        self, reg: Reg, pairs: Tuple[Tuple[int, Reg], ...]
    ) -> Dict[Reg, int]:
        """``conflicts_at[reg]`` regrouped as ``{other: slot mask}``.

        ``pairs`` must be the analysis' ``conflicts_at`` entry for
        ``reg``; the grouping is memoized per register.
        """
        cm = self._conflict_masks.get(reg)
        if cm is None:
            cm = {}
            for s, b in pairs:
                bit = 1 << s
                prev = cm.get(b)
                cm[b] = bit if prev is None else prev | bit
            self._conflict_masks[reg] = cm
        return cm

    def conflict_pair_slots(self) -> Dict[Tuple[int, int], List[int]]:
        """Each unordered conflicting pair once, by dense rank, with its
        ascending conflict-slot list.

        The int-space source of ``ThreadAnalysis.conflict_pairs``: the
        per-slot conflict relation re-derived from the liveness masks
        entirely in index space, so no register object is hashed per
        pair.  Lazy -- analyses that never validate a context never pay.
        """
        if self._pairs is None:
            dl = self._dl
            grouped: Dict[Tuple[int, int], List[int]] = {}
            for s, om in enumerate(dl.occ):
                if not (om & (om - 1)):
                    continue
                dm = dl.defs[s] & om
                dym = dl.dying[s] & om
                dnd = dym & ~dm
                idxs = list(bit_indices(om))
                plain = not (dm and dym)
                for ai in idxs:
                    abit = 1 << ai
                    if plain:
                        conf = om
                    elif dm & abit:
                        conf = om & ~dnd
                    elif dym & abit:
                        conf = om & ~dm
                    else:
                        conf = om
                    conf &= ~((abit << 1) - 1)  # each pair once: b > a
                    while conf:
                        low = conf & -conf
                        conf ^= low
                        key = (ai, low.bit_length() - 1)
                        g = grouped.get(key)
                        if g is None:
                            grouped[key] = [s]
                        else:
                            g.append(s)
            self._pairs = grouped
        return self._pairs


def finish_analysis_dense(
    program: Program,
    liveness: Liveness,
    nsr: NsrInfo,
    graphs: InterferenceGraphs,
) -> "ThreadAnalysis":  # noqa: F821 - imported lazily to avoid a cycle
    """Build every ``ThreadAnalysis`` field from the liveness masks.

    Every dict/tuple is produced pre-sorted (slots ascend, mask bits
    ascend == ``str`` ascends), so no field needs a final sort and the
    result compares equal, order included, to the reference builder's.
    """
    from repro.core.analysis import ThreadAnalysis

    dl: DenseLiveness = liveness._dense  # type: ignore[assignment]
    dmap = dl.dmap
    regs = dmap.regs
    frozen = dmap.frozen
    n = len(program.instrs)
    occ = dl.occ

    slot_masks = dl.slot_masks()
    slots = {r: dl.occupied_frozen(r) for r in regs}

    flow: Dict[Reg, List[Tuple[int, int]]] = {r: [] for r in regs}
    for i in range(n):
        occ_i = occ[i]
        if not occ_i:
            continue
        for j in program.successors(i):
            m = liveness._dense.live_in[j] & occ_i  # type: ignore[union-attr]
            while m:
                low = m & -m
                flow[regs[low.bit_length() - 1]].append((i, j))
                m ^= low
    flow_edges = {r: tuple(sorted(e)) for r, e in flow.items()}

    occupants: Dict[int, Tuple[Reg, ...]] = {}
    for i in range(n):
        m = occ[i]
        if m:
            occupants[i] = tuple(dmap.expand(m))

    live_across = {
        c: frozen(dl.live_out[c] & ~dl.defs[c]) for c in nsr.csbs
    }
    csb_sets: Dict[Reg, set] = {r: set() for r in regs}
    for c, across in live_across.items():
        for reg in across:
            csb_sets[reg].add(c)
    for reg in liveness.entry_live():
        csb_sets[reg].add(-1)

    defs_at = {i: frozen(dl.defs[i]) for i in range(n) if dl.defs[i]}
    dying_at = {i: frozen(dl.dying[i]) for i in range(n) if dl.dying[i]}

    # Pair volume dominates large kernels (hundreds of thousands of
    # (slot, other) tuples), so the loop builds each slot's k ``(s, b)``
    # tuples once and shares them across all k occupants' lists: the
    # clique case is two slice copies around the occupant's own entry,
    # and the exception cases filter the shared list instead of
    # re-allocating tuples per pair.  Exceptions follow
    # :func:`repro.core.analysis.true_conflict`: a def skips the
    # dying-not-def ranges, a dying use skips the defs.
    conflicts: Dict[Reg, List[Tuple[int, Reg]]] = {r: [] for r in regs}
    for s, occ_list in occupants.items():
        om = occ[s]
        if not (om & (om - 1)):
            continue  # fewer than two occupants: no pairs
        dm = dl.defs[s] & om
        dym = dl.dying[s] & om
        all_pairs = [(s, b) for b in occ_list]
        if not (dm and dym):
            # No def/dying-use exception possible: full pairwise clique.
            for p, a in enumerate(occ_list):
                lst = conflicts[a]
                lst.extend(all_pairs[:p])
                lst.extend(all_pairs[p + 1 :])
            continue
        dnd_set = frozen(dym & ~dm)
        def_set = frozen(dm)
        m = om
        for p, a in enumerate(occ_list):
            low = m & -m
            m ^= low
            if dm & low:
                excl = dnd_set
            elif dym & low:
                excl = def_set
            else:
                excl = None
            lst = conflicts[a]
            if excl:
                lst.extend(
                    [t for t in all_pairs if t[1] is not a and t[1] not in excl]
                )
            else:
                lst.extend(all_pairs[:p])
                lst.extend(all_pairs[p + 1 :])
    conflicts_at = {r: tuple(v) for r, v in conflicts.items()}

    return ThreadAnalysis(
        program=program,
        liveness=liveness,
        nsr=nsr,
        graphs=graphs,
        slots=slots,
        flow_edges=flow_edges,
        occupants=occupants,
        live_across=live_across,
        csb_slots_of={r: frozenset(s) for r, s in csb_sets.items()},
        defs_at=defs_at,
        dying_at=dying_at,
        conflicts_at=conflicts_at,
        dense=DenseAnalysisIndex(dmap, slot_masks, dl),
    )
