"""Register-requirement bounds for one thread (paper section 5).

* ``MinR = RegPmax`` -- the maximum number of co-live ranges at any program
  point; reachable by live-range splitting (paper's lower-bound lemma).
* ``MinPR = RegPCSBmax`` -- the maximum number of ranges live across any
  single CSB (program entry included); reachable by moving values into
  private registers just around each CSB (Lemma 1).
* ``MaxPR`` / ``MaxR`` -- the region-merge upper bounds: registers needed
  *without any move insertion*, from coloring BIG and the IIGs separately
  and merging (paper Figure 7, :mod:`repro.igraph.merge`).

The merge's coloring is kept: it seeds the intra-thread allocator's initial
context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.analysis import ThreadAnalysis
from repro.igraph.merge import merge_region_colorings
from repro.ir.operands import Reg


@dataclass
class Bounds:
    """The four bounds plus the estimation coloring for one thread."""

    min_pr: int
    min_r: int
    max_pr: int
    max_r: int
    coloring: Dict[Reg, int]

    @property
    def max_sr(self) -> int:
        return self.max_r - self.max_pr

    def __str__(self) -> str:
        return (
            f"PR in [{self.min_pr}, {self.max_pr}], "
            f"R in [{self.min_r}, {self.max_r}]"
        )


def estimate_bounds(analysis: ThreadAnalysis) -> Bounds:
    """Compute all four bounds for one analysed thread."""
    min_r = analysis.liveness.reg_p_max()
    min_pr = analysis.liveness.reg_p_csb_max()
    merged = merge_region_colorings(analysis.graphs)
    max_pr = max(merged.max_pr, min_pr)
    max_r = max(merged.max_r, min_r, max_pr)
    return Bounds(
        min_pr=min_pr,
        min_r=min_r,
        max_pr=max_pr,
        max_r=max_r,
        coloring=merged.coloring,
    )
