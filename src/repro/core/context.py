"""Allocation contexts: colored live-range pieces.

The intra-thread allocator (paper section 7) works by *live-range
splitting*: an original live range is partitioned into **pieces**, each a
set of occupied instruction slots with its own color.  A ``mov`` is paid on
every control-flow edge that carries the range between two pieces of
different colors.

Color convention: colors ``0 .. pr-1`` are **private** (they will map to
this thread's private physical registers), colors ``pr .. pr+sr-1`` are
**shared**.  A piece that holds its range at a CSB slot the range is live
across (or at program entry while the range is entry-live) is a *boundary
piece* and must use a private color; every other piece may use any color.

:class:`AllocContext` is a value object: the reduction operators copy it,
mutate the copy, and either commit or discard -- this is the paper's
"record the context of the last 2 invocations" machinery made explicit.
Copies are cheap: the slot->piece assignment is stored per variable and
copied lazily on first write (the reduction operators touch only a handful
of variables per step).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.analysis import ThreadAnalysis
from repro.core.dense import mask_of_slots
from repro.errors import AllocationError
from repro.ir.operands import Reg

#: A :meth:`AllocContext.conflict_profile` entry: the conflicting pieces
#: (in first-conflict order) and the bitmask of slots where the conflicts
#: occur.  A mutable 2-list rather than a tuple so both builders can
#: accumulate in place.
ProfileEntry = List  # [List[Piece], int]


@dataclass
class Piece:
    """One piece of a split live range."""

    pid: int
    reg: Reg
    slots: FrozenSet[int]
    color: int


class AllocContext:
    """A full coloring-with-splits of one thread.

    Attributes:
        analysis: the thread's static analysis (shared, never copied).
        pr: number of private colors in use (palette ``[0, pr)``).
        sr: number of shared colors in use (palette ``[pr, pr + sr)``).
    """

    def __init__(self, analysis: ThreadAnalysis, pr: int, sr: int):
        self.analysis = analysis
        self.pr = pr
        self.sr = sr
        self.pieces: Dict[int, Piece] = {}
        #: Per-variable slot -> pid assignment (copy-on-write).
        self._assign: Dict[Reg, Dict[int, int]] = {}
        #: Variables whose assignment map this context owns (mutable).
        self._owned: Set[Reg] = set()
        #: Piece count per variable (for the multi-piece fast path).
        self._piece_count: Dict[Reg, int] = {}
        self._next_pid = 0

    @property
    def multi_piece_regs(self) -> List[Reg]:
        """Variables split into more than one piece (the only ones that
        can contribute moves)."""
        return [r for r, n in self._piece_count.items() if n > 1]

    # ------------------------------------------------------------------
    # Basic accounting.
    # ------------------------------------------------------------------
    @property
    def r(self) -> int:
        return self.pr + self.sr

    def copy(self) -> "AllocContext":
        c = AllocContext(self.analysis, self.pr, self.sr)
        c.pieces = {
            pid: Piece(p.pid, p.reg, p.slots, p.color)
            for pid, p in self.pieces.items()
        }
        c._assign = dict(self._assign)  # shared var maps, cloned on write
        c._owned = set()
        c._piece_count = dict(self._piece_count)
        c._next_pid = self._next_pid
        return c

    def _writable_map(self, reg: Reg) -> Dict[int, int]:
        m = self._assign.get(reg)
        if m is None:
            m = {}
            self._assign[reg] = m
            self._owned.add(reg)
        elif reg not in self._owned:
            m = dict(m)
            self._assign[reg] = m
            self._owned.add(reg)
        return m

    def new_piece(self, reg: Reg, slots: FrozenSet[int], color: int) -> Piece:
        pid = self._next_pid
        self._next_pid += 1
        piece = Piece(pid, reg, slots, color)
        self.pieces[pid] = piece
        m = self._writable_map(reg)
        for s in slots:
            m[s] = pid
        self._piece_count[reg] = self._piece_count.get(reg, 0) + 1
        return piece

    def drop_piece(self, pid: int) -> None:
        piece = self.pieces.pop(pid)
        m = self._writable_map(piece.reg)
        for s in piece.slots:
            if m.get(s) == pid:
                del m[s]
        self._piece_count[piece.reg] -= 1

    def piece_of(self, reg: Reg, slot: int) -> Piece:
        return self.pieces[self._assign[reg][slot]]

    def pieces_of(self, reg: Reg) -> List[Piece]:
        seen: Set[int] = set()
        out: List[Piece] = []
        m = self._assign.get(reg, {})
        for s in sorted(m):
            pid = m[s]
            if pid not in seen:
                seen.add(pid)
                out.append(self.pieces[pid])
        return out

    def all_pieces(self) -> List[Piece]:
        return [self.pieces[pid] for pid in sorted(self.pieces)]

    # ------------------------------------------------------------------
    # Boundary classification.
    # ------------------------------------------------------------------
    def boundary_slots(self, piece: Piece) -> FrozenSet[int]:
        """CSB slots at which this piece holds its range across a switch.

        Slot ``-1`` (program entry) is reported when the range is live at
        entry and the piece owns slot 0.
        """
        out: Set[int] = set()
        for c in self.analysis.csb_slots_of.get(piece.reg, frozenset()):
            if c == -1:
                if 0 in piece.slots:
                    out.add(-1)
            elif c in piece.slots:
                out.add(c)
        return frozenset(out)

    def is_boundary(self, piece: Piece) -> bool:
        an = self.analysis
        for c in an.csb_slots_of.get(piece.reg, ()):
            if c == -1:
                if 0 in piece.slots:
                    return True
            elif c in piece.slots:
                return True
        return False

    # ------------------------------------------------------------------
    # Interference and conflicts.
    # ------------------------------------------------------------------
    def conflict_profile(self, piece: Piece) -> Dict[int, ProfileEntry]:
        """One sweep over the piece's slots: for every color used by a
        truly-conflicting piece, the conflicting pieces and the slots where
        the conflicts occur.

        ``profile[c] = [pieces, slot_mask]`` means coloring ``piece`` with
        ``c`` clashes with ``pieces`` at the slots of ``slot_mask``.

        A dense-built analysis answers from the precomputed per-range
        conflict masks; the reference sweep below walks the conflict pairs
        directly.  Both produce the same entries, piece order included.
        """
        dense = getattr(self.analysis, "dense", None)
        if dense is not None:
            return self._conflict_profile_dense(piece, dense)
        by_color: Dict[int, ProfileEntry] = {}
        seen_pids: Set[int] = set()
        pieces = self.pieces
        assign = self._assign
        slots = piece.slots
        whole = len(slots) == len(self.analysis.slots[piece.reg])
        if whole:
            pairs = self.analysis.conflicts_at.get(piece.reg, ())
        else:
            # Split piece: visit only the slots it owns, via the per-slot
            # index.  Ascending slots, original order within each slot --
            # the exact subsequence the linear scan above would keep.
            index = self.analysis.conflicts_by_slot(piece.reg)
            pairs = [
                pair
                for s in sorted(slots)
                for pair in index.get(s, ())
            ]
        for s, other_reg in pairs:
            other = pieces[assign[other_reg][s]]
            entry = by_color.get(other.color)
            if entry is None:
                entry = [[], 0]
                by_color[other.color] = entry
            if other.pid not in seen_pids:
                seen_pids.add(other.pid)
                entry[0].append(other)
            entry[1] |= 1 << s
        return by_color

    def _conflict_profile_dense(
        self, piece: Piece, dense: object
    ) -> Dict[int, ProfileEntry]:
        """Mask-backed :meth:`conflict_profile`.

        The per-other-range conflict masks are precomputed once per range
        (:meth:`repro.core.dense.DenseAnalysisIndex.conflict_masks`); a
        probe intersects them with the piece's slot mask and groups the
        surviving bits by occupying piece.  Entries are emitted in the
        reference order -- ascending (first conflicting slot, other-range
        rank), which is exactly the first-occurrence order of the sorted
        conflict-pair walk above.
        """
        an = self.analysis
        reg = piece.reg
        pairs = an.conflicts_at.get(reg, ())
        if not pairs:
            return {}
        masks = dense.conflict_masks(reg, pairs)  # type: ignore[attr-defined]
        whole = len(piece.slots) == len(an.slots[reg])
        pmask = None if whole else mask_of_slots(piece.slots)
        rank = dense.dmap.index  # type: ignore[attr-defined]
        pieces = self.pieces
        assign = self._assign
        counts = self._piece_count
        entries: List[Tuple[int, int, int, Piece]] = []
        for other_reg, m in masks.items():
            if pmask is not None:
                m &= pmask
                if not m:
                    continue
            oidx = rank[other_reg]
            om = assign[other_reg]
            if counts.get(other_reg, 0) <= 1:
                low = m & -m
                entries.append(
                    (low.bit_length() - 1, oidx, m, pieces[om[low.bit_length() - 1]])
                )
            else:
                # Split other range: group its conflict slots by piece.
                groups: Dict[int, List[int]] = {}
                while m:
                    low = m & -m
                    m ^= low
                    pid = om[low.bit_length() - 1]
                    g = groups.get(pid)
                    if g is None:
                        groups[pid] = [low.bit_length() - 1, low]
                    else:
                        g[1] |= low
                for pid, (first, gm) in groups.items():
                    entries.append((first, oidx, gm, pieces[pid]))
        entries.sort(key=lambda e: (e[0], e[1]))
        by_color: Dict[int, ProfileEntry] = {}
        for _, _, gm, other in entries:
            entry = by_color.get(other.color)
            if entry is None:
                entry = [[], 0]
                by_color[other.color] = entry
            entry[0].append(other)
            entry[1] |= gm
        return by_color

    def conflicts_with_color(
        self, piece: Piece, color: int
    ) -> List[Tuple[Piece, int]]:
        """Pieces that clash with ``piece`` if it were colored ``color``.

        Returns ``(other_piece, slot)`` pairs, one entry per conflicting
        piece (the slot is one witness).
        """
        seen: Set[int] = set()
        out: List[Tuple[Piece, int]] = []
        an = self.analysis
        for s in sorted(piece.slots):
            for other_reg in an.occupants.get(s, ()):
                if other_reg == piece.reg:
                    continue
                other = self.pieces[self._assign[other_reg][s]]
                if other.pid in seen or other.color != color:
                    continue
                if an.interferes_at(piece.reg, other_reg, s):
                    seen.add(other.pid)
                    out.append((other, s))
        return out

    def conflicts_any(self, piece: Piece, color: int) -> bool:
        """Would coloring ``piece`` with ``color`` clash with anything?

        Boolean-only form of :meth:`conflicts_with_color` for the
        allocator's yes/no probes: the dense path scans the precomputed
        conflict masks and stops at the first clashing piece instead of
        collecting witnesses.
        """
        dense = getattr(self.analysis, "dense", None)
        if dense is None:
            return bool(self.conflicts_with_color(piece, color))
        an = self.analysis
        reg = piece.reg
        pairs = an.conflicts_at.get(reg, ())
        if not pairs:
            return False
        masks = dense.conflict_masks(reg, pairs)  # type: ignore[attr-defined]
        whole = len(piece.slots) == len(an.slots[reg])
        pmask = None if whole else mask_of_slots(piece.slots)
        pieces = self.pieces
        assign = self._assign
        counts = self._piece_count
        for other_reg, m in masks.items():
            if pmask is not None:
                m &= pmask
                if not m:
                    continue
            om = assign[other_reg]
            if counts.get(other_reg, 0) <= 1:
                low = m & -m
                if pieces[om[low.bit_length() - 1]].color == color:
                    return True
            else:
                while m:
                    low = m & -m
                    m ^= low
                    if pieces[om[low.bit_length() - 1]].color == color:
                        return True
        return False

    def colors_in_conflict(self, piece: Piece) -> Set[int]:
        """All colors used by pieces truly conflicting with ``piece``."""
        return set(self.conflict_profile(piece))

    def color_users(self, color: int) -> List[Piece]:
        """All pieces currently holding ``color``."""
        return [p for p in self.all_pieces() if p.color == color]

    # ------------------------------------------------------------------
    # Cost.
    # ------------------------------------------------------------------
    def move_cost(self) -> int:
        """Number of ``mov`` instructions this context requires: one per
        flow edge whose endpoints live in pieces of different colors.

        Only variables split into several pieces can contribute.
        """
        cost = 0
        for reg in self.multi_piece_regs:
            m = self._assign[reg]
            pieces = self.pieces
            for i, j in self.analysis.flow_edges.get(reg, ()):
                if pieces[m[i]].color != pieces[m[j]].color:
                    cost += 1
        return cost

    def crossing_edges(self) -> List[Tuple[Reg, int, int]]:
        """The flow edges that need a materialized move: ``(reg, i, j)``."""
        out: List[Tuple[Reg, int, int]] = []
        for reg in sorted(self.multi_piece_regs, key=str):
            m = self._assign[reg]
            for i, j in self.analysis.flow_edges.get(reg, ()):
                if self.pieces[m[i]].color != self.pieces[m[j]].color:
                    out.append((reg, i, j))
        return out

    # ------------------------------------------------------------------
    # Splitting primitive.
    # ------------------------------------------------------------------
    def split_piece(
        self, piece: Piece, part: FrozenSet[int], color: int
    ) -> Piece:
        """Carve ``part`` out of ``piece`` into a new piece with ``color``.

        ``part`` must be a non-empty proper subset of the piece's slots.
        Returns the new piece; the original keeps the remaining slots.
        """
        if not part or not part < piece.slots:
            raise AllocationError(
                f"split of piece {piece.pid} ({piece.reg}) must take a "
                f"non-empty proper subset of its slots"
            )
        piece.slots = piece.slots - part
        return self.new_piece(piece.reg, part, color)

    # ------------------------------------------------------------------
    # Validation.
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check every invariant; raise :class:`AllocationError` on failure.

        * every occupied slot of every range belongs to exactly one piece;
        * colors fit the palette; boundary pieces use private colors;
        * no two truly-conflicting pieces share a color.
        """
        an = self.analysis
        for reg, slots in an.slots.items():
            m = self._assign.get(reg, {})
            for s in slots:
                if s not in m:
                    raise AllocationError(f"{reg} slot {s} unassigned")
        for piece in self.all_pieces():
            if not 0 <= piece.color < self.r:
                raise AllocationError(
                    f"piece {piece.pid} ({piece.reg}) color {piece.color} "
                    f"outside palette [0, {self.r})"
                )
            if self.is_boundary(piece) and piece.color >= self.pr:
                raise AllocationError(
                    f"boundary piece {piece.pid} ({piece.reg}) uses shared "
                    f"color {piece.color} (pr={self.pr})"
                )
        # Walk the precomputed true-conflict pairs instead of re-deriving
        # them from occupants x occupants interferes_at() probes -- the
        # same checks at a fraction of the cost.  When neither range of a
        # pair is split, every conflicting slot compares the same two
        # pieces, so a single comparison covers them all; only pairs with
        # a split side need the per-slot sweep.
        pieces = self.pieces
        assign = self._assign
        counts = self._piece_count
        for (a, b), cslots in an.conflict_pairs().items():
            ma = assign.get(a)
            mb = assign.get(b)
            if ma is None or mb is None:
                continue  # no slots: vacuously checked by the first loop
            if counts.get(a, 0) == 1 and counts.get(b, 0) == 1:
                cslots = cslots[:1]
            for s in cslots:
                pa = pieces[ma[s]]
                pb = pieces[mb[s]]
                if pa.color == pb.color:
                    raise AllocationError(
                        f"{a} and {b} conflict at slot {s} but share "
                        f"color {pa.color}"
                    )


def initial_context(
    analysis: ThreadAnalysis,
    coloring: Dict[Reg, int],
    pr: int,
    sr: int,
) -> AllocContext:
    """Build the unsplit context from an estimation coloring.

    Every live range becomes a single piece covering all its slots, colored
    per ``coloring``.  The context is validated before being returned.
    """
    ctx = AllocContext(analysis, pr, sr)
    for reg in analysis.all_regs:
        ctx.new_piece(reg, analysis.slots[reg], coloring[reg])
    ctx.validate()
    return ctx
