"""The intra-thread register allocator (paper section 7, Figure 10).

Given an accepted context realizing ``(PR, SR)``, the allocator produces a
context for ``(PR-1, SR)`` (*Reduce-PR*) or ``(PR, SR-1)`` (*Reduce-SR*)
and reports its cost in ``mov`` instructions.  Following the paper it is
incremental: the inter-thread loop probes reductions against the current
accepted context and commits the cheapest.

Both reductions work by *eliminating one color* from the palette:

* try every candidate color, displace all its users, keep the cheapest
  successful elimination;
* a user piece is displaced by (a) plain recoloring when some legal color
  is conflict-free (the paper's ``NCN < PR-1`` / ``NCN < R-1`` tests),
  (b) recoloring a blocking neighbor first (the paper's "change their
  neighbors' colors" heuristic), or (c) live-range splitting: boundary
  pieces shed the conflicting NSRs (paper Figure 12, *NSR exclusion*),
  internal pieces shed exactly the overlapping slots (paper Figure 13);
* split-off fragments keep the dying color and are requeued, mirroring the
  paper's ``Set_color_node`` bookkeeping; fragments shrink strictly, so
  the loop terminates.

Deviation from the paper's prose, for correctness: eliminating a *private*
color also displaces its internal users.  The paper's Reduce-PR narrative
leaves internal nodes untouched, but internal nodes may legitimately sit on
private colors (the estimation colors IIGs over the full palette), and a
color cannot be removed from the palette while anyone uses it.

When the greedy machinery fails, :meth:`IntraAllocator.pointwise` rebuilds
the whole thread at one-piece-per-slot granularity -- the constructive form
of the paper's lower-bound lemma.  It succeeds whenever
``PR >= RegPCSBmax`` and ``PR + SR >= RegPmax``, so a feasible request
never fails; a move-elimination pass then coalesces colors to keep the
move count reasonable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.analysis import ThreadAnalysis
from repro.core.bounds import Bounds, estimate_bounds
from repro.core.context import AllocContext, Piece, ProfileEntry, initial_context
from repro.errors import AllocationError
from repro.igraph.graph import bit_indices, popcount
from repro.ir.operands import Reg
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics


@dataclass
class ReduceResult:
    """A successful reduction: the new context and its total move cost."""

    context: AllocContext
    cost: int


class IntraAllocator:
    """Incremental per-thread allocator bound to one analysed program."""

    #: Hard cap on displacement steps per color elimination, scaled by
    #: problem size inside :meth:`_eliminate_color`.
    _STEP_SLACK = 64

    def __init__(self, analysis: ThreadAnalysis, bounds: Optional[Bounds] = None):
        self.analysis = analysis
        self.bounds = bounds if bounds is not None else estimate_bounds(analysis)
        self.context = initial_context(
            analysis,
            self.bounds.coloring,
            self.bounds.max_pr,
            self.bounds.max_r - self.bounds.max_pr,
        )

    def _note(self, event: str, **fields: object) -> None:
        """Telemetry for one allocation decision (no-op when disabled).

        Counts both the plain total and a per-thread labeled series, so
        decisions can be sliced by the kernel that paid for them.
        """
        em = obs.get_emitter()
        if em.enabled:
            name = self.analysis.program.name
            em.emit(event, thread=name, **fields)
            reg = obs_metrics.registry()
            reg.counter(event).inc()
            reg.counter(event, thread=name).inc()

    # ------------------------------------------------------------------
    # Public operations.
    # ------------------------------------------------------------------
    def feasible(self, pr: int, sr: int) -> bool:
        """Can ``(pr, sr)`` possibly be realized for this thread?"""
        return (
            pr >= self.bounds.min_pr
            and sr >= 0
            and pr + sr >= self.bounds.min_r
        )

    def probe_reduce_pr(self) -> Optional[ReduceResult]:
        """Cost of moving the accepted context to ``(PR-1, SR)``."""
        ctx = self.context
        if not self.feasible(ctx.pr - 1, ctx.sr):
            return None
        return self._reduce(ctx, private=True)

    def probe_reduce_sr(self) -> Optional[ReduceResult]:
        """Cost of moving the accepted context to ``(PR, SR-1)``."""
        ctx = self.context
        if not self.feasible(ctx.pr, ctx.sr - 1):
            return None
        return self._reduce(ctx, private=False)

    def probe_shift(self) -> Optional[ReduceResult]:
        """Cost of moving the accepted context to ``(PR-1, SR+1)``.

        The total palette size R stays the same: one private color is
        *reclassified* as shared.  Only boundary pieces must vacate the
        color (internal pieces may use shared colors), so this is usually
        the cheapest way for a thread to give a private register back when
        the global shared pool already covers the extra shared color.
        """
        ctx = self.context
        if not self.feasible(ctx.pr - 1, ctx.sr + 1):
            return None
        return self._shift(ctx)

    def commit(self, result: ReduceResult) -> None:
        """Accept a probed reduction as the new current context."""
        self.context = result.context

    def realize(self, pr: int, sr: int) -> AllocContext:
        """Drive the accepted context down to exactly ``(pr, sr)``.

        Reduces PR first, then SR (order is irrelevant to feasibility; each
        step takes the cheapest available color elimination).
        """
        if not self.feasible(pr, sr):
            raise AllocationError(
                f"{self.analysis.program.name}: ({pr}, {sr}) below bounds "
                f"{self.bounds}"
            )
        if pr > self.context.pr or pr + sr > self.context.r:
            raise AllocationError(
                f"{self.analysis.program.name}: cannot grow palette from "
                f"({self.context.pr}, {self.context.sr}) to ({pr}, {sr})"
            )
        while (self.context.pr, self.context.sr) != (pr, sr):
            if self.context.pr > pr and self.context.sr < sr:
                step = self._shift(self.context)
            elif self.context.pr > pr:
                step = self._reduce(self.context, private=True)
            else:
                step = self._reduce(self.context, private=False)
            if step is None:
                self.context = self.pointwise(pr, sr)
                return self.context
            self.context = step.context
        self.context.validate()
        return self.context

    # ------------------------------------------------------------------
    # One reduction = best single-color elimination.
    # ------------------------------------------------------------------
    def _reduce(
        self, ctx: AllocContext, private: bool
    ) -> Optional[ReduceResult]:
        colors = list(range(ctx.pr) if private else range(ctx.pr, ctx.r))
        # Cheapest eliminations first: colors with the fewest users.  The
        # paper tries every color; the ordering only changes which ties we
        # see first, plus it lets the zero-extra-cost early exit fire fast.
        users: Dict[int, int] = {c: 0 for c in colors}
        for piece in ctx.pieces.values():
            if piece.color in users:
                users[piece.color] += 1
        colors.sort(key=lambda c: (users[c], c))
        base_cost = ctx.move_cost()
        best: Optional[ReduceResult] = None
        failures = 0
        for c in colors:
            trial = ctx.copy()
            if not self._eliminate_color(trial, c):
                failures += 1
                # Color eliminations fail for structural reasons (pinned
                # boundary pressure) that rarely differ between colors;
                # after a few strikes, go straight to the rebuild below.
                if failures >= 4 and best is None:
                    break
                continue
            self._renumber_after_elimination(trial, c, private)
            self._eliminate_unnecessary_moves(trial)
            cost = trial.move_cost()
            if best is None or cost < best.cost:
                best = ReduceResult(context=trial, cost=cost)
                if cost <= base_cost:
                    break  # cannot do better than "no new moves"
        if best is not None:
            best.context.validate()
            return best
        # Greedy elimination failed on every color: rebuild pointwise.
        pr = ctx.pr - 1 if private else ctx.pr
        sr = ctx.sr if private else ctx.sr - 1
        rebuilt = self.pointwise(pr, sr)
        return ReduceResult(context=rebuilt, cost=rebuilt.move_cost())

    def _shift(self, ctx: AllocContext) -> Optional[ReduceResult]:
        """Best single-color reclassification private -> shared."""
        colors = list(range(ctx.pr))
        boundary_users: Dict[int, int] = {c: 0 for c in colors}
        for piece in ctx.pieces.values():
            if piece.color < ctx.pr and ctx.is_boundary(piece):
                boundary_users[piece.color] += 1
        colors.sort(key=lambda c: (boundary_users[c], c))
        base_cost = ctx.move_cost()
        best: Optional[ReduceResult] = None
        failures = 0
        for c in colors:
            trial = ctx.copy()
            if not self._clear_boundary_users(trial, c):
                failures += 1
                if failures >= 4 and best is None:
                    break
                continue
            self._swap_colors(trial, c, trial.pr - 1)
            trial.pr -= 1
            trial.sr += 1
            self._eliminate_unnecessary_moves(trial)
            cost = trial.move_cost()
            if best is None or cost < best.cost:
                best = ReduceResult(context=trial, cost=cost)
                if cost <= base_cost:
                    break
        if best is not None:
            best.context.validate()
            return best
        rebuilt = self.pointwise(ctx.pr - 1, ctx.sr + 1)
        return ReduceResult(context=rebuilt, cost=rebuilt.move_cost())

    def _clear_boundary_users(self, ctx: AllocContext, c: int) -> bool:
        """Displace every *boundary* piece off color ``c`` (internal pieces
        may keep it -- the color is about to become shared)."""
        queue: List[int] = [
            p.pid
            for p in ctx.all_pieces()
            if p.color == c and ctx.is_boundary(p)
        ]
        budget = 4 * (len(ctx.pieces) + len(queue)) + self._STEP_SLACK
        steps = 0
        while queue:
            steps += 1
            if steps > budget:
                return False
            pid = queue.pop(0)
            piece = ctx.pieces.get(pid)
            if piece is None or piece.color != c or not ctx.is_boundary(piece):
                continue
            fresh = self._displace(ctx, piece, banned=c)
            if fresh is None:
                return False
            queue.extend(
                pid2
                for pid2 in fresh
                if ctx.pieces[pid2].color == c
                and ctx.is_boundary(ctx.pieces[pid2])
            )
            budget += 2 * len(fresh)
        return True

    @staticmethod
    def _swap_colors(ctx: AllocContext, a: int, b: int) -> None:
        if a == b:
            return
        for piece in ctx.pieces.values():
            if piece.color == a:
                piece.color = b
            elif piece.color == b:
                piece.color = a

    @staticmethod
    def _renumber_after_elimination(
        ctx: AllocContext, c: int, private: bool
    ) -> None:
        for piece in ctx.pieces.values():
            if piece.color > c:
                piece.color -= 1
        if private:
            ctx.pr -= 1
        else:
            ctx.sr -= 1

    # ------------------------------------------------------------------
    # Color elimination.
    # ------------------------------------------------------------------
    def _eliminate_color(self, ctx: AllocContext, c: int) -> bool:
        """Displace every user of color ``c`` in ``ctx``; False on failure."""
        queue: List[int] = [
            p.pid for p in ctx.all_pieces() if p.color == c
        ]
        budget = 4 * (len(ctx.pieces) + len(queue)) + self._STEP_SLACK
        steps = 0
        while queue:
            steps += 1
            if steps > budget:
                return False
            pid = queue.pop(0)
            piece = ctx.pieces.get(pid)
            if piece is None or piece.color != c:
                continue
            fresh = self._displace(ctx, piece, banned=c)
            if fresh is None:
                return False
            queue.extend(fresh)
            budget += 2 * len(fresh)
        return True

    def _palette(self, ctx: AllocContext, piece: Piece) -> range:
        return range(ctx.pr) if ctx.is_boundary(piece) else range(ctx.r)

    def _displace(
        self, ctx: AllocContext, piece: Piece, banned: int
    ) -> Optional[List[int]]:
        """Move ``piece`` off its color, never using color ``banned``.

        Returns the pids of split-off fragments still carrying ``banned``
        (to be requeued), or None when the piece cannot be displaced.
        """
        candidates = [
            col
            for col in self._palette(ctx, piece)
            if col != banned and col != piece.color
        ]
        profile = ctx.conflict_profile(piece)
        # (a) plain recoloring -- the paper's NCN test.
        for col in candidates:
            if col not in profile:
                piece.color = col
                self._note(
                    "intra.recolor", reg=str(piece.reg), pid=piece.pid,
                    to=col, via="direct",
                )
                return []
        # (b) recolor blocking neighbors first.  Only worth attempting for
        # lightly-blocked colors: each blocker costs a conflict sweep, and
        # a color blocked by many pieces essentially never frees up.
        for col in sorted(candidates, key=lambda c: len(profile[c][0])):
            if len(profile[col][0]) > 4:
                break
            if self._recolor_via_neighbors(ctx, piece, profile[col][0], col, banned):
                self._note(
                    "intra.recolor", reg=str(piece.reg), pid=piece.pid,
                    to=col, via="neighbors",
                )
                return []
        # (c) live-range splitting.
        if ctx.is_boundary(piece):
            return self._split_boundary(ctx, piece, candidates, profile, banned)
        return self._split_internal(ctx, piece, candidates, profile, banned)

    def _recolor_via_neighbors(
        self,
        ctx: AllocContext,
        piece: Piece,
        blockers: Sequence[Piece],
        col: int,
        banned: int,
    ) -> bool:
        """Try to free ``col`` for ``piece`` by recoloring its blockers."""
        moved: List[Tuple[Piece, int]] = []
        for blocker in blockers:
            b_profile = ctx.conflict_profile(blocker)
            choice = next(
                (
                    bc
                    for bc in self._palette(ctx, blocker)
                    if bc not in (banned, blocker.color, col)
                    and bc not in b_profile
                ),
                None,
            )
            if choice is None:
                for b, old in reversed(moved):
                    b.color = old
                return False
            moved.append((blocker, blocker.color))
            blocker.color = choice
        if ctx.conflicts_any(piece, col):
            for b, old in reversed(moved):
                b.color = old
            return False
        piece.color = col
        return True

    def _split_boundary(
        self,
        ctx: AllocContext,
        piece: Piece,
        candidates: Sequence[int],
        profile: Dict[int, ProfileEntry],
        banned: int,
    ) -> Optional[List[int]]:
        """NSR exclusion (paper Figure 12).

        Shed, as a new internal fragment, every NSR where the target color
        conflicts; the boundary remainder (which keeps all its CSB slots)
        takes the target color.  Fails for a candidate color when a
        conflict sits on a CSB slot the piece is live across -- the value
        must be held right there, so exclusion cannot help.
        """
        an = self.analysis
        protected = set(ctx.boundary_slots(piece))
        if -1 in protected:
            protected.discard(-1)
            protected.add(0)
        protected_mask = 0
        for s in protected:
            protected_mask |= 1 << s
        best: Optional[Tuple[int, int, FrozenSet[int]]] = None
        for col in candidates:
            entry = profile.get(col)
            if entry is None:
                continue  # handled by plain recoloring already
            conflict_mask = entry[1]
            if conflict_mask & protected_mask:
                continue
            bad_regions: Set[int] = set()
            # Conflicts on CSB slots the piece merely occupies as a def/
            # use point (not live across it -- those are protected) are
            # shed individually rather than by region.
            bad_slot_mask = 0
            m = conflict_mask
            while m:
                low = m & -m
                m ^= low
                rid = an.nsr_of_slot(low.bit_length() - 1)
                if rid >= 0:
                    bad_regions.add(rid)
                else:
                    bad_slot_mask |= low
            part = frozenset(
                s
                for s in piece.slots
                if (an.nsr_of_slot(s) in bad_regions or (bad_slot_mask >> s) & 1)
                and s not in protected
            )
            if not part or not part < piece.slots:
                continue
            if best is None or len(part) < best[1]:
                best = (col, len(part), part)
        if best is None:
            return self._shatter(ctx, piece, protected)
        col, _, part = best
        fragment = ctx.split_piece(piece, part, piece.color)
        piece.color = col
        if ctx.conflicts_any(piece, col):
            # The exclusion removed every conflicting slot, so this cannot
            # fire; assert loudly if the model is ever wrong.
            raise AllocationError(
                f"NSR exclusion left conflicts on {piece.reg}"
            )
        self._note(
            "intra.split", reg=str(piece.reg), pid=piece.pid,
            kind="boundary", shed=len(part), to=col,
        )
        return [fragment.pid]

    def _split_internal(
        self,
        ctx: AllocContext,
        piece: Piece,
        candidates: Sequence[int],
        profile: Dict[int, ProfileEntry],
        banned: int,
    ) -> Optional[List[int]]:
        """In-NSR live-range splitting (paper Figure 13).

        Shed exactly the conflicting slots as a fragment keeping the old
        color; recolor the remainder.  The fragment is strictly smaller and
        is requeued, so repeated splitting terminates at single slots,
        where the pressure bound guarantees a free color.
        """
        piece_mask = 0
        for s in piece.slots:
            piece_mask |= 1 << s
        best: Optional[Tuple[int, int, int]] = None
        for col in candidates:
            entry = profile.get(col)
            if entry is None:
                continue
            cmask = entry[1]
            # The shed set must be a proper subset of the piece's slots.
            if cmask & ~piece_mask or cmask == piece_mask:
                continue
            k = popcount(cmask)
            if best is None or k < best[1]:
                best = (col, k, cmask)
        if best is None:
            return self._shatter(ctx, piece, protected=set())
        col, _, cmask = best
        part = frozenset(bit_indices(cmask))
        fragment = ctx.split_piece(piece, part, piece.color)
        piece.color = col
        if ctx.conflicts_any(piece, col):
            raise AllocationError(
                f"internal split left conflicts on {piece.reg}"
            )
        self._note(
            "intra.split", reg=str(piece.reg), pid=piece.pid,
            kind="internal", shed=len(part), to=col,
        )
        return [fragment.pid]

    def _shatter(
        self, ctx: AllocContext, piece: Piece, protected: Set[int]
    ) -> Optional[List[int]]:
        """Last-resort split: break ``piece`` into per-slot fragments.

        The remainder keeps the protected slots (CSB slots the piece is
        live across, which must stay together only in the sense that each
        is individually private -- they may be separate fragments too).
        Every fragment keeps the old color and is requeued.
        """
        if len(piece.slots) <= 1:
            return None  # single slot and still stuck: genuinely infeasible
        slots = sorted(piece.slots)
        keep = slots[0]
        fresh: List[int] = []
        for s in slots[1:]:
            fragment = ctx.split_piece(piece, frozenset([s]), piece.color)
            fresh.append(fragment.pid)
        # The piece itself (now single-slot) still carries the banned
        # color; requeue it as well by reporting it as fresh work.
        fresh.append(piece.pid)
        self._note(
            "intra.shatter", reg=str(piece.reg), pid=piece.pid,
            fragments=len(fresh),
        )
        return fresh

    # ------------------------------------------------------------------
    # Move elimination (paper: "Eliminate Unnecessary Moves").
    # ------------------------------------------------------------------
    def _eliminate_unnecessary_moves(self, ctx: AllocContext) -> None:
        """Recolor pieces toward their flow neighbors to drop crossings.

        A piece whose color differs from an adjacent piece of the same
        range costs one move per crossing edge; when it can legally take
        the neighbor's color the moves disappear.  Runs to a fixpoint
        (bounded), strictly decreasing total cost each pass.
        """
        split_regs = sorted(ctx.multi_piece_regs, key=str)
        if not split_regs:
            return
        for _ in range(len(ctx.pieces) + 2):
            improved = False
            for reg in split_regs:
                for piece in ctx.pieces_of(reg):
                    if self._try_absorb(ctx, piece):
                        improved = True
            if not improved:
                return

    def _try_absorb(self, ctx: AllocContext, piece: Piece) -> bool:
        """Recolor ``piece`` to a flow-neighbor color when that removes
        more crossings than it creates; returns True on improvement."""
        an = self.analysis
        gains: Dict[int, int] = {}
        for i, j in an.flow_edges.get(piece.reg, ()):
            pa = ctx.piece_of(piece.reg, i)
            pb = ctx.piece_of(piece.reg, j)
            if pa.pid == piece.pid and pb.pid != piece.pid:
                gains[pb.color] = gains.get(pb.color, 0) + 1
            elif pb.pid == piece.pid and pa.pid != piece.pid:
                gains[pa.color] = gains.get(pa.color, 0) + 1
        if not gains:
            return False
        current_gain = gains.get(piece.color, 0)
        palette = self._palette(ctx, piece)
        profile = None
        for col, gain in sorted(gains.items()):
            if gain <= current_gain or col == piece.color:
                continue
            if col not in palette:
                continue
            if profile is None:
                profile = ctx.conflict_profile(piece)
            if col in profile:
                continue
            piece.color = col
            return True
        return False

    # ------------------------------------------------------------------
    # Pointwise rebuild (the Lemma-1 constructive fallback).
    # ------------------------------------------------------------------
    def pointwise(self, pr: int, sr: int) -> AllocContext:
        """Build a valid context for ``(pr, sr)`` from scratch.

        One piece per (range, slot); slots are colored in program order,
        preferring the color the range had at a predecessor slot so runs
        of slots coalesce and the move count stays small.  Guaranteed to
        succeed whenever ``pr >= RegPCSBmax`` and ``pr + sr >= RegPmax``.
        """
        if not self.feasible(pr, sr):
            raise AllocationError(
                f"{self.analysis.program.name}: pointwise ({pr}, {sr}) "
                f"below bounds {self.bounds}"
            )
        self._note("intra.pointwise", pr=pr, sr=sr)
        an = self.analysis
        r = pr + sr
        ctx = AllocContext(an, pr, sr)
        lv = an.liveness
        n = len(an.program.instrs)
        # color_here[reg] is the color of reg's piece at the previous slot
        # it occupied; used as the preference to minimize crossings.
        last_color: Dict[Reg, int] = {}
        for s in range(n):
            occ = an.occupants.get(s, ())
            if not occ:
                continue
            is_csb = an.program.instrs[s].is_csb
            across = an.live_across.get(s, frozenset()) if is_csb else frozenset()
            entry_live = lv.entry_live() if s == 0 else frozenset()
            carriers = [reg for reg in occ if reg in lv.live_in[s]]
            pure_defs = [
                reg
                for reg in occ
                if reg not in lv.live_in[s]
            ]
            taken: Set[int] = set()

            def choose(reg: Reg, limit: int, avoid: Set[int]) -> int:
                pref = last_color.get(reg)
                if pref is not None and pref < limit and pref not in avoid:
                    return pref
                for col in range(limit):
                    if col not in avoid:
                        return col
                raise AllocationError(
                    f"{an.program.name}: pointwise ran out of colors at "
                    f"slot {s} for {reg} (pr={pr}, sr={sr})"
                )

            # Private-constrained carriers first (live across this CSB or
            # live at entry), then the rest, then pure defs which may reuse
            # a dying carrier's color.
            ordered = sorted(
                carriers,
                key=lambda reg: (reg not in across and reg not in entry_live, str(reg)),
            )
            for reg in ordered:
                limit = pr if (reg in across or reg in entry_live) else r
                col = choose(reg, limit, taken)
                taken.add(col)
                ctx.new_piece(reg, frozenset([s]), col)
                last_color[reg] = col
            dying = an.dying_at.get(s, frozenset())
            dying_colors = {
                ctx.piece_of(reg, s).color for reg in dying if reg in carriers
            }
            defs_taken: Set[int] = set()
            for reg in sorted(pure_defs, key=str):
                col = choose(reg, r, (taken - dying_colors) | defs_taken)
                taken.add(col)
                defs_taken.add(col)
                ctx.new_piece(reg, frozenset([s]), col)
                last_color[reg] = col
        self._eliminate_unnecessary_moves(ctx)
        ctx.validate()
        return ctx
