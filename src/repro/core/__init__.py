"""The paper's contribution: multi-threaded register allocation.

* :mod:`repro.core.analysis` -- per-thread analysis bundle (liveness, NSRs,
  interference graphs, slot/flow-edge model of live ranges).
* :mod:`repro.core.bounds` -- ``MinPR``/``MinR``/``MaxPR``/``MaxR``
  estimation (paper section 5).
* :mod:`repro.core.context` -- allocation contexts: live-range pieces with
  colors; the unit the intra-thread allocator transforms.
* :mod:`repro.core.intra` -- the intra-thread allocator: ``Reduce-PR`` and
  ``Reduce-SR`` invocations via recoloring and live-range splitting
  (paper section 7).
* :mod:`repro.core.inter` -- the greedy inter-thread allocator
  (paper section 6, Figure 8).
* :mod:`repro.core.sra` -- the symmetric special case (paper section 8).
* :mod:`repro.core.assign` -- color -> physical-register assignment.
* :mod:`repro.core.rewrite` -- materialize an allocation into executable
  code with physical registers and inserted moves.
* :mod:`repro.core.pipeline` -- the one-call public API.
"""

from repro.core.analysis import ThreadAnalysis, analyze_thread
from repro.core.bounds import Bounds, estimate_bounds
from repro.core.context import AllocContext, Piece, initial_context
from repro.core.inter import InterThreadResult, allocate_threads
from repro.core.intra import IntraAllocator
from repro.core.sra import allocate_symmetric
from repro.core.assign import RegisterAssignment, assign_physical
from repro.core.rewrite import rewrite_program
from repro.core.pipeline import (
    AllocationOutcome,
    HybridOutcome,
    allocate_programs,
    allocate_with_spill_fallback,
)

__all__ = [
    "ThreadAnalysis",
    "analyze_thread",
    "Bounds",
    "estimate_bounds",
    "Piece",
    "AllocContext",
    "initial_context",
    "IntraAllocator",
    "InterThreadResult",
    "allocate_threads",
    "allocate_symmetric",
    "RegisterAssignment",
    "assign_physical",
    "rewrite_program",
    "AllocationOutcome",
    "allocate_programs",
    "HybridOutcome",
    "allocate_with_spill_fallback",
]
