"""Content-addressed memoization of per-thread analysis artifacts.

:func:`~repro.core.analysis.analyze_thread` and
:func:`~repro.core.bounds.estimate_bounds` are pure functions of the
program text: liveness, NSRs, the interference graphs, and the four
register bounds do not depend on the register budget, the policy, or the
other threads on the PU.  Every experiment harness nevertheless used to
recompute them per ``(kernel, nthd, nreg)`` sweep point -- by far the
largest share of allocation wall time (see ``docs/PERFORMANCE.md``).

This module memoizes both behind :meth:`Program.fingerprint`:

* an in-process LRU (:class:`AnalysisCache`) shared by the whole
  pipeline through :func:`get_cache`;
* an optional on-disk layer (``REPRO_CACHE_DIR`` or ``--cache-dir``)
  that persists pickled ``(analysis, bounds)`` pairs across processes,
  keyed by the same fingerprint;
* telemetry: ``cache.hit`` / ``cache.miss`` / ``cache.disk_error``
  counters and events through :mod:`repro.obs` whenever a capture is
  active, plus always-on plain counters in :class:`CacheStats` for
  benchmarks and tests.

Failure policy (``docs/ROBUSTNESS.md``): a corrupt or unreadable disk
entry is quarantined to ``*.bad`` (so later runs miss cheaply instead
of re-paying the failed decode) and treated as a miss; repeated disk
failures take the ``cache.disk_to_memory`` degradation rung, disabling
the disk layer for this cache while the in-memory LRU keeps working.
The ``cache.disk`` fault-injection site and the dense-analysis
fallback rung are exercised by ``repro chaos``.

Cached values are shared objects: callers must treat a returned
:class:`ThreadAnalysis` (and the ``coloring`` inside its
:class:`Bounds`) as immutable, which the allocator pipeline already
does -- contexts reference an analysis but never write to it.  Because
keys are content hashes there is no invalidation protocol: mutating a
program changes its fingerprint, and the stale entry simply ages out of
the LRU.
"""

from __future__ import annotations

import os
import pathlib
import pickle
import tempfile
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.analysis import ThreadAnalysis, analyze_thread
from repro.core.bounds import Bounds, estimate_bounds
from repro.errors import InjectedFault
from repro.ir.program import Program
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics
from repro.resilience import faults, guard

#: Environment variable naming the on-disk cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default in-process LRU capacity (entries, i.e. distinct programs).
DEFAULT_CAPACITY = 128

#: Default capacity of the descent-trajectory LRU (distinct thread mixes).
DEFAULT_DESCENT_CAPACITY = 16

#: Consecutive disk-layer failures tolerated before the cache takes the
#: ``cache.disk_to_memory`` degradation rung and disables its disk dir.
DEFAULT_MAX_DISK_ERRORS = 4

#: Quarantined (``*.bad``) entries retained per cache directory.  A
#: flaky disk on a long-running server would otherwise grow the
#: quarantine without bound; beyond the cap the oldest entries are
#: unlinked (``cache.quarantine_trimmed`` event).
DEFAULT_MAX_QUARANTINE = 32


@dataclass
class CacheStats:
    """Always-on plain counters (telemetry-independent)."""

    hits: int = 0
    misses: int = 0
    disk_hits: int = 0
    disk_errors: int = 0
    evictions: int = 0
    descent_hits: int = 0
    descent_misses: int = 0

    def to_dict(self) -> Dict[str, int]:
        return asdict(self)


class _Entry:
    """One cached program: the analysis, with bounds filled in lazily."""

    __slots__ = ("analysis", "bounds")

    def __init__(self, analysis: ThreadAnalysis, bounds: Optional[Bounds]):
        self.analysis = analysis
        self.bounds = bounds


def _analyze_resilient(program: Program) -> ThreadAnalysis:
    """:func:`analyze_thread` behind the ``analysis.dense_to_reference``
    degradation rung.

    When the process default is the dense bitset kernels and they raise
    (or the ``analysis.dense`` fault site fires), the program is
    re-analyzed once with the set-based reference implementation --
    bit-identical by construction -- and the rung is recorded.  Under
    the reference implementation failures propagate unchanged.
    """
    from repro.core.dense import (
        get_default_analysis_impl,
        set_default_analysis_impl,
    )

    impl = get_default_analysis_impl()
    try:
        if impl == "dense" and faults.fire(
            "analysis.dense", program=program.name
        ):
            raise InjectedFault(
                f"injected dense-analysis fault for {program.name!r}"
            )
        return analyze_thread(program)
    except Exception as exc:
        if impl != "dense":
            raise
        guard.record_degradation(
            "analysis.dense_to_reference",
            reason=f"{type(exc).__name__}: {exc}",
            program=program.name,
        )
        previous = set_default_analysis_impl("reference")
        try:
            return analyze_thread(program)
        finally:
            set_default_analysis_impl(previous)


def _analyze_worker(program: Program) -> Tuple[ThreadAnalysis, Bounds]:
    """Top-level (picklable) worker: full analysis bundle for one program."""
    analysis = _analyze_resilient(program)
    return analysis, estimate_bounds(analysis)


class AnalysisCache:
    """Fingerprint-keyed LRU over ``(ThreadAnalysis, Bounds)`` pairs."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        max_disk_errors: int = DEFAULT_MAX_DISK_ERRORS,
        descent_capacity: int = DEFAULT_DESCENT_CAPACITY,
        max_quarantine: int = DEFAULT_MAX_QUARANTINE,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if descent_capacity < 1:
            raise ValueError(
                f"descent capacity must be >= 1, got {descent_capacity}"
            )
        self.capacity = capacity
        self.descent_capacity = descent_capacity
        if cache_dir is None:
            cache_dir = os.environ.get(ENV_CACHE_DIR) or None
        self.cache_dir = pathlib.Path(cache_dir) if cache_dir else None
        self.max_disk_errors = max_disk_errors
        self.max_quarantine = max_quarantine
        self.stats = CacheStats()
        self._disk_error_streak = 0
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        # Descent trajectories are memory-only: a SharedDescent holds
        # live AllocContext graphs whose pickled form would dwarf the
        # analysis entries, and rebuilding one is itself served by the
        # (possibly disk-backed) analysis entries above.
        self._descents: "OrderedDict[Tuple[Tuple[str, ...], str], Any]" = (
            OrderedDict()
        )

    # ------------------------------------------------------------------
    # Public API.
    # ------------------------------------------------------------------
    def analyze(self, program: Program) -> ThreadAnalysis:
        """Memoized :func:`analyze_thread` (treat the result as immutable)."""
        return self._entry(program.fingerprint(), program).analysis

    def bounds(self, program: Program) -> Bounds:
        """Memoized :func:`estimate_bounds` of the program's analysis."""
        fp = program.fingerprint()
        entry = self._entry(fp, program)
        if entry.bounds is None:
            entry.bounds = estimate_bounds(entry.analysis)
            self._disk_store(fp, entry)
        return entry.bounds

    def analyze_with_bounds(
        self, program: Program
    ) -> Tuple[ThreadAnalysis, Bounds]:
        """Both artifacts in one lookup."""
        return self.analyze(program), self.bounds(program)

    def warm_many(
        self, programs: Sequence[Program], jobs: int = 1
    ) -> List[Tuple[ThreadAnalysis, Bounds]]:
        """Fill the cache for ``programs`` and return their pairs in order.

        With ``jobs > 1`` the cache misses are analysed in a parallel
        sweep (:func:`repro.harness.sweep.sweep_map`) and the results
        folded back into this (parent-process) cache, so a subsequent
        serial pass is fully warm.  Duplicate programs are analysed once.
        """
        fps = [p.fingerprint() for p in programs]
        missing: "OrderedDict[str, Program]" = OrderedDict()
        for fp, program in zip(fps, programs):
            if fp not in self._entries and fp not in missing:
                if self._disk_load(fp) is None:
                    missing[fp] = program
        if missing and jobs > 1:
            from repro.harness.sweep import sweep_map

            pairs = sweep_map(
                _analyze_worker, list(missing.values()), jobs=jobs,
                label="analyze",
            )
            for (fp, program), (analysis, bounds) in zip(
                missing.items(), pairs
            ):
                self._count_miss(fp, program.name)
                entry = _Entry(analysis, bounds)
                self._insert(fp, entry)
                self._disk_store(fp, entry)
                # _entry() below must not re-count these as fresh misses.
        return [
            (self._entry(fp, p).analysis, self.bounds(p))
            for fp, p in zip(fps, programs)
        ]

    def descent(self, programs: Sequence[Program], policy: str = "greedy"):
        """Memoized :class:`~repro.core.inter.SharedDescent` for this
        exact (ordered) thread mix.

        The descent trajectory is budget-independent, so every budget
        query against the same programs extends ONE shared descent; on a
        warm trajectory a repeated query is a dictionary read-off.  The
        returned object is shared and resumable -- callers only ever call
        its query methods (``result`` / ``zero_cost_result`` /
        ``reachable``), which is all monotonic extension, never
        mutation-in-place of served results.
        """
        from repro.core.inter import SharedDescent

        fps = tuple(p.fingerprint() for p in programs)
        key = (fps, policy)
        descent = self._descents.get(key)
        if descent is not None:
            self._descents.move_to_end(key)
            self.stats.descent_hits += 1
            self._note("cache.descent_hit", fps[0] if fps else "")
            return descent
        self.stats.descent_misses += 1
        self._note("cache.descent_miss", fps[0] if fps else "")
        analyses = [self.analyze(p) for p in programs]
        bounds = [self.bounds(p) for p in programs]
        descent = SharedDescent(analyses, policy=policy, bounds=bounds)
        self._descents[key] = descent
        while len(self._descents) > self.descent_capacity:
            self._descents.popitem(last=False)
            self.stats.evictions += 1
        return descent

    def clear(self) -> None:
        """Drop every in-memory entry (the disk layer is left alone)."""
        self._entries.clear()
        self._descents.clear()

    def clear_descents(self) -> None:
        """Drop only the descent trajectories (benchmarks use this to
        time a cold descent against warm analyses)."""
        self._descents.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, program: Program) -> bool:
        return program.fingerprint() in self._entries

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _note(self, event: str, fp: str, kernel: Optional[str] = None) -> None:
        em = obs.get_emitter()
        if em.enabled:
            if kernel is None:
                em.emit(event, fingerprint=fp[:12])
            else:
                em.emit(event, fingerprint=fp[:12], kernel=kernel)
            reg = obs_metrics.registry()
            reg.counter(event).inc()
            if kernel is not None:
                reg.counter(event, kernel=kernel).inc()

    def _count_miss(self, fp: str, kernel: Optional[str] = None) -> None:
        self.stats.misses += 1
        self._note("cache.miss", fp, kernel)

    def _entry(self, fp: str, program: Program) -> _Entry:
        entry = self._entries.get(fp)
        if entry is not None:
            self._entries.move_to_end(fp)
            self.stats.hits += 1
            self._note("cache.hit", fp, program.name)
            return entry
        entry = self._disk_load(fp)
        if entry is not None:
            self.stats.hits += 1
            self.stats.disk_hits += 1
            self._note("cache.hit", fp, program.name)
            self._insert(fp, entry)
            return entry
        self._count_miss(fp, program.name)
        entry = _Entry(_analyze_resilient(program), None)
        self._insert(fp, entry)
        self._disk_store(fp, entry)
        return entry

    def _insert(self, fp: str, entry: _Entry) -> None:
        self._entries[fp] = entry
        self._entries.move_to_end(fp)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    # On-disk layer.
    # ------------------------------------------------------------------
    def _disk_path(self, fp: str) -> Optional[pathlib.Path]:
        return self.cache_dir / f"{fp}.pkl" if self.cache_dir else None

    def _disk_fail(self, fp: str, exc: BaseException, action: str) -> None:
        """Count a disk-layer failure; degrade to memory-only if they
        keep coming (the ``cache.disk_to_memory`` rung)."""
        self.stats.disk_errors += 1
        self._disk_error_streak += 1
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "cache.disk_error",
                fingerprint=fp[:12],
                error=f"{type(exc).__name__}: {exc}",
                action=action,
            )
            obs_metrics.registry().counter("cache.disk_error").inc()
        if (
            self.cache_dir is not None
            and self._disk_error_streak >= self.max_disk_errors
        ):
            guard.record_degradation(
                "cache.disk_to_memory",
                reason=f"{self._disk_error_streak} consecutive disk-cache "
                f"failures (last: {type(exc).__name__}: {exc})",
                cache_dir=str(self.cache_dir),
            )
            self.cache_dir = None

    def _quarantine(self, path: pathlib.Path) -> str:
        """Move a corrupt entry aside (``*.bad``) so later runs miss
        cheaply instead of re-paying the failed unpickle; returns the
        action taken for the ``cache.disk_error`` event.  The retained
        quarantine is capped (oldest-first trim, see
        :func:`trim_quarantine`) so a flaky disk cannot grow it without
        bound on a long-running server."""
        try:
            os.replace(path, path.with_suffix(".bad"))
        except OSError:
            try:
                path.unlink()
                return "deleted"
            except OSError:
                return "left-in-place"
        trim_quarantine(path.parent, self.max_quarantine)
        return "quarantined"

    def _disk_load(self, fp: str) -> Optional[_Entry]:
        path = self._disk_path(fp)
        if path is None:
            return None
        spec = faults.fire("cache.disk", fingerprint=fp[:12])
        if spec is not None:
            _damage_entry(path, spec.mode)
        try:
            with path.open("rb") as fh:
                analysis, bounds = pickle.load(fh)
            if not isinstance(analysis, ThreadAnalysis):
                raise TypeError(f"unexpected payload in {path}")
        except FileNotFoundError:
            return None
        except Exception as exc:
            # A corrupt / foreign / version-skewed file is a miss -- but
            # never a silent one: the entry is quarantined so the next
            # run does not re-pay the failed decode, and the failure is
            # tagged for telemetry and the degradation ladder.
            self._disk_fail(fp, exc, self._quarantine(path))
            return None
        self._disk_error_streak = 0
        return _Entry(analysis, bounds)

    def _disk_store(self, fp: str, entry: _Entry) -> None:
        path = self._disk_path(fp)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(path.parent), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(
                        (entry.analysis, entry.bounds),
                        fh,
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                os.replace(tmp, path)  # atomic: readers never see partials
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError as exc:
            self._disk_fail(fp, exc, "store-failed")
        else:
            self._disk_error_streak = 0


def trim_quarantine(
    directory: pathlib.Path, cap: int = DEFAULT_MAX_QUARANTINE
) -> int:
    """Keep at most ``cap`` quarantined ``*.bad`` entries in ``directory``.

    Oldest entries (by mtime, fingerprint name breaking ties so the
    order is deterministic on coarse-clock filesystems) are unlinked
    first; already-gone files are skipped silently (another process may
    trim concurrently).  Returns the number of entries removed and, when
    anything was trimmed, emits a ``cache.quarantine_trimmed`` event and
    counter.  Shared by the analysis cache and the service's
    content-addressed result store.
    """
    if cap < 0:
        raise ValueError(f"quarantine cap must be >= 0, got {cap}")
    try:
        bad = list(pathlib.Path(directory).glob("*.bad"))
    except OSError:
        return 0
    if len(bad) <= cap:
        return 0

    def _age_key(path: pathlib.Path) -> Tuple[float, str]:
        try:
            return (path.stat().st_mtime, path.name)
        except OSError:
            return (0.0, path.name)

    bad.sort(key=_age_key)
    trimmed = 0
    for victim in bad[: len(bad) - cap]:
        try:
            victim.unlink()
            trimmed += 1
        except OSError:
            pass
    if trimmed:
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "cache.quarantine_trimmed",
                directory=str(directory),
                trimmed=trimmed,
                cap=cap,
            )
            obs_metrics.registry().counter("cache.quarantine_trimmed").inc(
                trimmed
            )
    return trimmed


def _damage_entry(path: pathlib.Path, mode: str) -> None:
    """Fault-injection helper: damage an on-disk entry in place.

    ``truncate`` keeps the first half of the bytes (a partial write);
    anything else overwrites the entry with deterministic garbage.  A
    missing entry is left missing -- that is already a plain miss.
    """
    try:
        data = path.read_bytes()
    except OSError:
        return
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
    else:
        path.write_bytes(b"\x00repro-injected-corruption\x00" + data[:32][::-1])


_cache = AnalysisCache()


def get_cache() -> AnalysisCache:
    """The process-global analysis cache."""
    return _cache


def set_cache(cache: AnalysisCache) -> AnalysisCache:
    """Install ``cache`` globally; returns the previous cache."""
    global _cache
    previous = _cache
    _cache = cache
    return previous


def set_cache_dir(path: Optional[Union[str, pathlib.Path]]) -> None:
    """Point the global cache's on-disk layer at ``path`` (None disables)."""
    _cache.cache_dir = pathlib.Path(path) if path else None


@contextmanager
def scoped(cache: Optional[AnalysisCache] = None) -> Iterator[AnalysisCache]:
    """Swap in a fresh (or given) cache for the block, restoring on exit."""
    fresh = cache if cache is not None else AnalysisCache()
    previous = set_cache(fresh)
    try:
        yield fresh
    finally:
        set_cache(previous)
