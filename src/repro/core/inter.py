"""The greedy inter-thread register allocator (paper section 6, Figure 8).

Starting from every thread's upper bounds ``(MaxPR_i, MaxSR_i)`` the loop
reduces the global requirement ``sum_i PR_i + max_i SR_i`` one register at
a time until it fits ``Nreg``:

* reducing ``PR_i`` of any one thread lowers the sum directly;
* reducing SR lowers the max only when *every* thread currently at the max
  reduces together (and only if each of them can).

Each candidate direction is *probed* by the threads' intra-thread
allocators, which report the move-instruction cost of the reduced context;
the loop commits the direction with the smallest cost increase.  Probes are
cached: committing a reduction to thread ``i`` invalidates only thread
``i``'s probes, which is what makes the paper's incremental-context scheme
pay off.

``zero_cost_only`` implements the Figure-14 experiment: keep reducing only
while some direction costs no moves at all, ignoring the register budget;
the end state is the smallest no-move register requirement.

``policy="round_robin"`` is an ablation: instead of probing costs it
reduces the widest thread's PR (then SR) blindly, so benchmarks can show
what the cost-probing buys.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis import ThreadAnalysis
from repro.core.bounds import Bounds
from repro.core.context import AllocContext
from repro.core.intra import IntraAllocator, ReduceResult
from repro.errors import AllocationError
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics


@dataclass
class ThreadAllocation:
    """Final per-thread allocation facts."""

    analysis: ThreadAnalysis
    bounds: Bounds
    pr: int
    sr: int
    context: AllocContext
    move_cost: int

    @property
    def r(self) -> int:
        return self.pr + self.sr

    @property
    def name(self) -> str:
        return self.analysis.program.name


@dataclass
class InterThreadResult:
    """Outcome of the inter-thread allocation across one PU."""

    threads: List[ThreadAllocation]
    nreg: int

    @property
    def sgr(self) -> int:
        """Globally shared registers: the max of per-thread SR demands."""
        return max((t.sr for t in self.threads), default=0)

    @property
    def total_private(self) -> int:
        return sum(t.pr for t in self.threads)

    @property
    def total_registers(self) -> int:
        return self.total_private + self.sgr

    @property
    def total_moves(self) -> int:
        return sum(t.move_cost for t in self.threads)

    def fits(self) -> bool:
        return self.total_registers <= self.nreg


def allocate_threads(
    analyses: Sequence[ThreadAnalysis],
    nreg: int,
    zero_cost_only: bool = False,
    policy: str = "greedy",
    bounds: Optional[Sequence[Bounds]] = None,
    _max_steps: Optional[int] = None,
) -> InterThreadResult:
    """Run the Figure-8 loop over one PU's threads.

    Args:
        analyses: one :class:`ThreadAnalysis` per hardware thread.
        nreg: total physical registers of the PU.
        zero_cost_only: Figure-14 mode -- reduce only while free, ignore
            ``nreg``.
        policy: ``"greedy"`` (paper) or ``"round_robin"`` (ablation).
        bounds: optional precomputed per-thread bounds (same order as
            ``analyses``); estimated here when omitted.
        _max_steps: test hook overriding the safety step cap; leave None
            outside tests.

    Raises:
        AllocationError: the programs cannot fit ``nreg`` registers even at
            their lower bounds -- or, as a loud invariant failure, the
            loop was stopped by the safety step cap instead of budget
            satisfaction or bound exhaustion.
    """
    if policy not in ("greedy", "round_robin"):
        raise ValueError(f"unknown policy {policy!r}")
    if bounds is not None and len(bounds) != len(analyses):
        raise ValueError("bounds must match analyses one-to-one")
    allocators = [
        IntraAllocator(a, bounds[i] if bounds is not None else None)
        for i, a in enumerate(analyses)
    ]
    nthd = len(allocators)
    em = obs.get_emitter()
    reg = obs_metrics.registry() if em.enabled else None
    step_no = 0

    def prs() -> List[int]:
        return [al.context.pr for al in allocators]

    def srs() -> List[int]:
        return [al.context.sr for al in allocators]

    def requirement() -> int:
        return sum(prs()) + (max(srs()) if allocators else 0)

    # Probe caches: thread index -> ReduceResult (or None if infeasible).
    pr_cache: Dict[int, Optional[ReduceResult]] = {}
    sr_cache: Dict[int, Optional[ReduceResult]] = {}
    shift_cache: Dict[int, Optional[ReduceResult]] = {}

    def probe_pr(i: int) -> Optional[ReduceResult]:
        if i not in pr_cache:
            if reg is not None:
                reg.counter("inter.probes").inc()
            pr_cache[i] = allocators[i].probe_reduce_pr()
        return pr_cache[i]

    def probe_sr(i: int) -> Optional[ReduceResult]:
        if i not in sr_cache:
            if reg is not None:
                reg.counter("inter.probes").inc()
            sr_cache[i] = allocators[i].probe_reduce_sr()
        return sr_cache[i]

    def probe_shift(i: int) -> Optional[ReduceResult]:
        if i not in shift_cache:
            if reg is not None:
                reg.counter("inter.probes").inc()
            shift_cache[i] = allocators[i].probe_shift()
        return shift_cache[i]

    def invalidate(i: int) -> None:
        pr_cache.pop(i, None)
        sr_cache.pop(i, None)
        shift_cache.pop(i, None)

    if em.enabled:
        em.emit(
            "inter.start",
            requirement=requirement(),
            nreg=nreg,
            pr=prs(),
            sr=srs(),
            policy=policy,
            zero_cost_only=zero_cost_only,
        )
    # Safety cap only: every committed step retires at least one unit of
    # reducible slack (a PR, a shiftable color, or the shared max), so the
    # loop must stop earlier -- via budget satisfaction, bound exhaustion,
    # or the zero-cost cutoff.  Reaching the cap means that invariant
    # broke, and the for/else below turns it into a loud failure instead
    # of silently returning a half-reduced allocation.
    max_steps = (
        _max_steps
        if _max_steps is not None
        else sum(b.bounds.max_r for b in allocators) + nthd + 8
    )
    for _ in range(max_steps):
        if not zero_cost_only and requirement() <= nreg:
            break

        candidates: List[Tuple[int, str, int, List[ReduceResult]]] = []
        cur_srs = srs()
        max_sr = max(cur_srs) if cur_srs else 0

        # Probe threads with the most slack above their lower bounds
        # first: their reductions are the likeliest to be free, and a
        # zero-cost candidate is unbeatable, so probing can stop there
        # (cached probes keep later iterations cheap either way).
        order = sorted(
            range(nthd),
            key=lambda i: (
                allocators[i].bounds.min_pr - allocators[i].context.pr,
                i,
            ),
        )
        found_free = False
        for i in order:
            # Candidate: shift one thread's private color into the shared
            # range.  Free in total registers whenever the thread's SR is
            # strictly below the global max (the shared pool already has
            # the extra register), and usually cheaper than a PR
            # reduction, since only boundary pieces must vacate the color.
            if cur_srs[i] < max_sr:
                res = probe_shift(i)
                if res is not None:
                    delta = res.cost - allocators[i].context.move_cost()
                    candidates.append((delta, "shift", i, [res]))
                    if delta <= 0:
                        found_free = True
                        break
            # Candidate: reduce this thread's PR outright.
            res = probe_pr(i)
            if res is not None:
                delta = res.cost - allocators[i].context.move_cost()
                candidates.append((delta, "pr", i, [res]))
                if delta <= 0:
                    found_free = True
                    break

        # Candidate: reduce SR of every thread at the current max.
        if max_sr > 0 and not found_free:
            at_max = [i for i in range(nthd) if cur_srs[i] == max_sr]
            results = [probe_sr(i) for i in at_max]
            if all(r is not None for r in results):
                delta = sum(
                    r.cost - allocators[i].context.move_cost()  # type: ignore[union-attr]
                    for i, r in zip(at_max, results)
                )
                candidates.append((delta, "sr", -1, results))  # type: ignore[arg-type]

        if not candidates:
            if zero_cost_only:
                break
            raise AllocationError(
                f"cannot fit {requirement()} required registers into "
                f"{nreg}: all reductions are at their lower bounds"
            )

        if policy == "round_robin":
            # Ablation: ignore costs, prefer shrinking the widest PR.
            pr_cands = [c for c in candidates if c[1] == "pr"]
            if pr_cands:
                chosen = max(pr_cands, key=lambda c: prs()[c[2]])
            else:
                chosen = candidates[-1]
        else:
            chosen = min(candidates, key=lambda c: (c[0], c[1], c[2]))

        delta, kind, idx, results = chosen
        if zero_cost_only and delta > 0:
            break
        if kind in ("pr", "shift"):
            allocators[idx].commit(results[0])
            invalidate(idx)
            involved = [idx]
        else:
            at_max = [i for i in range(nthd) if srs()[i] == max_sr]
            for i, res in zip(at_max, results):
                allocators[i].commit(res)
                invalidate(i)
            involved = at_max
        step_no += 1
        if em.enabled:
            em.emit(
                "inter.step",
                step=step_no,
                kind=kind,
                threads=involved,
                delta=delta,
                requirement=requirement(),
                nreg=nreg,
                pr=prs(),
                sr=srs(),
                move_cost=sum(al.context.move_cost() for al in allocators),
            )
            assert reg is not None
            reg.counter("inter.steps").inc()
            reg.counter("inter.steps", kind=kind).inc()
            reg.histogram("inter.step_delta").observe(delta)
    else:
        if em.enabled:
            em.emit(
                "inter.step_cap",
                steps=step_no,
                max_steps=max_steps,
                requirement=requirement(),
                nreg=nreg,
                zero_cost_only=zero_cost_only,
            )
            assert reg is not None
            reg.counter("inter.step_cap").inc()
        raise AllocationError(
            f"inter-thread reduction stopped by the step cap "
            f"({step_no} steps, cap {max_steps}) instead of budget "
            f"satisfaction or bound exhaustion"
        )

    if em.enabled:
        em.emit(
            "inter.done",
            steps=step_no,
            requirement=requirement(),
            nreg=nreg,
            fits=requirement() <= nreg,
            pr=prs(),
            sr=srs(),
        )
    threads = [
        ThreadAllocation(
            analysis=al.analysis,
            bounds=al.bounds,
            pr=al.context.pr,
            sr=al.context.sr,
            context=al.context,
            move_cost=al.context.move_cost(),
        )
        for al in allocators
    ]
    return InterThreadResult(threads=threads, nreg=nreg)
