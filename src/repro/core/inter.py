"""The greedy inter-thread register allocator (paper section 6, Figure 8).

Starting from every thread's upper bounds ``(MaxPR_i, MaxSR_i)`` the loop
reduces the global requirement ``sum_i PR_i + max_i SR_i`` one register at
a time until it fits ``Nreg``:

* reducing ``PR_i`` of any one thread lowers the sum directly;
* reducing SR lowers the max only when *every* thread currently at the max
  reduces together (and only if each of them can).

Each candidate direction is *probed* by the threads' intra-thread
allocators, which report the move-instruction cost of the reduced context;
the loop commits the direction with the smallest cost increase.  Probes are
cached: committing a reduction to thread ``i`` invalidates only thread
``i``'s probes, which is what makes the paper's incremental-context scheme
pay off.

``zero_cost_only`` implements the Figure-14 experiment: keep reducing only
while some direction costs no moves at all, ignoring the register budget;
the end state is the smallest no-move register requirement.

``policy="round_robin"`` is an ablation: instead of probing costs it
reduces the widest thread's PR (then SR) blindly, so benchmarks can show
what the cost-probing buys.

The budget ``Nreg`` appears ONLY in the stop condition: the reduction
trajectory itself is budget-independent.  :class:`SharedDescent` (and the
convenience driver :func:`allocate_threads_descent`) exploits that to run
the descent ONCE, checkpoint the per-thread contexts at every requirement
level, and materialize an :class:`InterThreadResult` for *any* budget --
byte-identical to a fresh :func:`allocate_threads` at that budget, because
both walk the exact same committed prefix.  Checkpoints are O(1): the
intra allocators replace (never mutate) their accepted
:class:`~repro.core.context.AllocContext`, so snapshotting is taking a
reference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.analysis import ThreadAnalysis
from repro.core.bounds import Bounds
from repro.core.context import AllocContext
from repro.core.intra import IntraAllocator, ReduceResult
from repro.errors import AllocationError
from repro.obs import events as obs
from repro.obs import metrics as obs_metrics


@dataclass
class ThreadAllocation:
    """Final per-thread allocation facts."""

    analysis: ThreadAnalysis
    bounds: Bounds
    pr: int
    sr: int
    context: AllocContext
    move_cost: int

    @property
    def r(self) -> int:
        return self.pr + self.sr

    @property
    def name(self) -> str:
        return self.analysis.program.name


@dataclass
class InterThreadResult:
    """Outcome of the inter-thread allocation across one PU."""

    threads: List[ThreadAllocation]
    nreg: int

    @property
    def sgr(self) -> int:
        """Globally shared registers: the max of per-thread SR demands."""
        return max((t.sr for t in self.threads), default=0)

    @property
    def total_private(self) -> int:
        return sum(t.pr for t in self.threads)

    @property
    def total_registers(self) -> int:
        return self.total_private + self.sgr

    @property
    def total_moves(self) -> int:
        return sum(t.move_cost for t in self.threads)

    def fits(self) -> bool:
        return self.total_registers <= self.nreg


@dataclass
class _Step:
    """One committed reduction of the descent."""

    step: int  #: 1-based commit number
    kind: str  #: ``"pr"`` | ``"sr"`` | ``"shift"``
    involved: List[int]
    delta: int  #: move-cost increase the commit was chosen at


#: ``advance`` statuses besides a committed :class:`_Step`.
_EXHAUSTED = "exhausted"  #: no candidate direction remains
_POSITIVE = "positive"  #: cheapest direction costs moves (zero-cost stop)


class _DescentEngine:
    """The Figure-8 loop's mechanics, one committed reduction at a time.

    Owns the intra-thread allocators, the per-thread probe caches, and the
    step counter; knows nothing about register budgets.  Both the classic
    :func:`allocate_threads` driver and :class:`SharedDescent` advance the
    same engine, which is what makes their trajectories identical by
    construction rather than by parallel maintenance.
    """

    def __init__(
        self,
        analyses: Sequence[ThreadAnalysis],
        policy: str = "greedy",
        bounds: Optional[Sequence[Bounds]] = None,
        _max_steps: Optional[int] = None,
    ):
        if policy not in ("greedy", "round_robin"):
            raise ValueError(f"unknown policy {policy!r}")
        if bounds is not None and len(bounds) != len(analyses):
            raise ValueError("bounds must match analyses one-to-one")
        self.policy = policy
        self.allocators = [
            IntraAllocator(a, bounds[i] if bounds is not None else None)
            for i, a in enumerate(analyses)
        ]
        self.nthd = len(self.allocators)
        self.step_no = 0
        self.exhausted = False
        # Safety cap only: every committed step retires at least one unit
        # of reducible slack (a PR, a shiftable color, or the shared max),
        # so any driver must stop earlier -- via budget satisfaction,
        # bound exhaustion, or the zero-cost cutoff.  Reaching the cap
        # means that invariant broke; drivers turn it into a loud failure
        # instead of silently returning a half-reduced allocation.
        self.max_steps = (
            _max_steps
            if _max_steps is not None
            else sum(b.bounds.max_r for b in self.allocators) + self.nthd + 8
        )
        # Probe caches: thread index -> ReduceResult (None if infeasible).
        self._pr_cache: Dict[int, Optional[ReduceResult]] = {}
        self._sr_cache: Dict[int, Optional[ReduceResult]] = {}
        self._shift_cache: Dict[int, Optional[ReduceResult]] = {}

    # ------------------------------------------------------------------
    # State read-offs.
    # ------------------------------------------------------------------
    def prs(self) -> List[int]:
        return [al.context.pr for al in self.allocators]

    def srs(self) -> List[int]:
        return [al.context.sr for al in self.allocators]

    def requirement(self) -> int:
        return sum(self.prs()) + (max(self.srs()) if self.allocators else 0)

    def move_cost(self) -> int:
        return sum(al.context.move_cost() for al in self.allocators)

    def contexts(self) -> Tuple[AllocContext, ...]:
        """The accepted per-thread contexts.  ``IntraAllocator.commit``
        *replaces* its context (probes work on copies), so this tuple is
        an immutable snapshot -- checkpointing is O(1)."""
        return tuple(al.context for al in self.allocators)

    def materialize(
        self, contexts: Iterable[AllocContext], nreg: int
    ) -> InterThreadResult:
        threads = [
            ThreadAllocation(
                analysis=al.analysis,
                bounds=al.bounds,
                pr=ctx.pr,
                sr=ctx.sr,
                context=ctx,
                move_cost=ctx.move_cost(),
            )
            for al, ctx in zip(self.allocators, contexts)
        ]
        return InterThreadResult(threads=threads, nreg=nreg)

    # ------------------------------------------------------------------
    # Probes (cached; see module docstring).
    # ------------------------------------------------------------------
    def _probe(
        self,
        kind: str,
        i: int,
        cache: Dict[int, Optional[ReduceResult]],
    ) -> Optional[ReduceResult]:
        em = obs.get_emitter()
        if i not in cache:
            if em.enabled:
                reg = obs_metrics.registry()
                # The unlabeled total stays byte-identical to the
                # pre-label telemetry; the ``kind`` breakdown and the
                # hit/miss counter are additive (docs/OBSERVABILITY.md).
                reg.counter("inter.probes").inc()
                reg.counter("inter.probes", kind=kind).inc()
                reg.counter("inter.probe_cache", result="miss").inc()
            al = self.allocators[i]
            if kind == "pr":
                cache[i] = al.probe_reduce_pr()
            elif kind == "sr":
                cache[i] = al.probe_reduce_sr()
            else:
                cache[i] = al.probe_shift()
        elif em.enabled:
            obs_metrics.registry().counter(
                "inter.probe_cache", result="hit"
            ).inc()
        return cache[i]

    def probe_pr(self, i: int) -> Optional[ReduceResult]:
        return self._probe("pr", i, self._pr_cache)

    def probe_sr(self, i: int) -> Optional[ReduceResult]:
        return self._probe("sr", i, self._sr_cache)

    def probe_shift(self, i: int) -> Optional[ReduceResult]:
        return self._probe("shift", i, self._shift_cache)

    def invalidate(self, i: int) -> None:
        self._pr_cache.pop(i, None)
        self._sr_cache.pop(i, None)
        self._shift_cache.pop(i, None)

    # ------------------------------------------------------------------
    # One iteration of the Figure-8 loop.
    # ------------------------------------------------------------------
    def advance(
        self, stop_on_positive: bool = False
    ) -> Tuple[str, Optional[_Step]]:
        """Probe every direction, pick one, and (usually) commit it.

        Returns ``("step", step)`` after a commit, ``(_EXHAUSTED, None)``
        when no direction remains, and -- only with ``stop_on_positive``
        (the zero-cost cutoff) -- ``(_POSITIVE, None)`` *without
        committing* when the cheapest direction costs moves.
        """
        allocators = self.allocators
        candidates: List[Tuple[int, str, int, List[ReduceResult]]] = []
        cur_srs = self.srs()
        max_sr = max(cur_srs) if cur_srs else 0

        # Probe threads with the most slack above their lower bounds
        # first: their reductions are the likeliest to be free, and a
        # zero-cost candidate is unbeatable, so probing can stop there
        # (cached probes keep later iterations cheap either way).
        order = sorted(
            range(self.nthd),
            key=lambda i: (
                allocators[i].bounds.min_pr - allocators[i].context.pr,
                i,
            ),
        )
        found_free = False
        for i in order:
            # Candidate: shift one thread's private color into the shared
            # range.  Free in total registers whenever the thread's SR is
            # strictly below the global max (the shared pool already has
            # the extra register), and usually cheaper than a PR
            # reduction, since only boundary pieces must vacate the color.
            if cur_srs[i] < max_sr:
                res = self.probe_shift(i)
                if res is not None:
                    delta = res.cost - allocators[i].context.move_cost()
                    candidates.append((delta, "shift", i, [res]))
                    if delta <= 0:
                        found_free = True
                        break
            # Candidate: reduce this thread's PR outright.
            res = self.probe_pr(i)
            if res is not None:
                delta = res.cost - allocators[i].context.move_cost()
                candidates.append((delta, "pr", i, [res]))
                if delta <= 0:
                    found_free = True
                    break

        # Candidate: reduce SR of every thread at the current max.
        if max_sr > 0 and not found_free:
            at_max = [i for i in range(self.nthd) if cur_srs[i] == max_sr]
            results = [self.probe_sr(i) for i in at_max]
            if all(r is not None for r in results):
                delta = sum(
                    r.cost - allocators[i].context.move_cost()  # type: ignore[union-attr]
                    for i, r in zip(at_max, results)
                )
                candidates.append((delta, "sr", -1, results))  # type: ignore[arg-type]

        if not candidates:
            self.exhausted = True
            return _EXHAUSTED, None

        if self.policy == "round_robin":
            # Ablation: ignore costs, prefer shrinking the widest PR.
            pr_cands = [c for c in candidates if c[1] == "pr"]
            if pr_cands:
                prs = self.prs()
                chosen = max(pr_cands, key=lambda c: prs[c[2]])
            else:
                chosen = candidates[-1]
        else:
            chosen = min(candidates, key=lambda c: (c[0], c[1], c[2]))

        delta, kind, idx, results = chosen
        if stop_on_positive and delta > 0:
            return _POSITIVE, None
        if kind in ("pr", "shift"):
            allocators[idx].commit(results[0])
            self.invalidate(idx)
            involved = [idx]
        else:
            at_max = [i for i in range(self.nthd) if self.srs()[i] == max_sr]
            for i, res in zip(at_max, results):
                allocators[i].commit(res)
                self.invalidate(i)
            involved = at_max
        self.step_no += 1
        return "step", _Step(
            step=self.step_no, kind=kind, involved=involved, delta=delta
        )


def _step_cap_error(steps: int, max_steps: int) -> AllocationError:
    return AllocationError(
        f"inter-thread reduction stopped by the step cap "
        f"({steps} steps, cap {max_steps}) instead of budget "
        f"satisfaction or bound exhaustion"
    )


def _exhausted_error(requirement: int, nreg: int) -> AllocationError:
    return AllocationError(
        f"cannot fit {requirement} required registers into "
        f"{nreg}: all reductions are at their lower bounds",
        requirement=requirement,
    )


def allocate_threads(
    analyses: Sequence[ThreadAnalysis],
    nreg: int,
    zero_cost_only: bool = False,
    policy: str = "greedy",
    bounds: Optional[Sequence[Bounds]] = None,
    _max_steps: Optional[int] = None,
) -> InterThreadResult:
    """Run the Figure-8 loop over one PU's threads.

    Args:
        analyses: one :class:`ThreadAnalysis` per hardware thread.
        nreg: total physical registers of the PU.
        zero_cost_only: Figure-14 mode -- reduce only while free, ignore
            ``nreg``.
        policy: ``"greedy"`` (paper) or ``"round_robin"`` (ablation).
        bounds: optional precomputed per-thread bounds (same order as
            ``analyses``); estimated here when omitted.
        _max_steps: test hook overriding the safety step cap; leave None
            outside tests.

    Raises:
        AllocationError: the programs cannot fit ``nreg`` registers even at
            their lower bounds (``exc.requirement`` carries the residual
            requirement) -- or, as a loud invariant failure, the loop was
            stopped by the safety step cap instead of budget satisfaction
            or bound exhaustion.
    """
    engine = _DescentEngine(
        analyses, policy=policy, bounds=bounds, _max_steps=_max_steps
    )
    em = obs.get_emitter()
    if em.enabled:
        em.emit(
            "inter.start",
            requirement=engine.requirement(),
            nreg=nreg,
            pr=engine.prs(),
            sr=engine.srs(),
            policy=policy,
            zero_cost_only=zero_cost_only,
        )
    for _ in range(engine.max_steps):
        if not zero_cost_only and engine.requirement() <= nreg:
            break
        status, step = engine.advance(stop_on_positive=zero_cost_only)
        if status == _EXHAUSTED:
            if zero_cost_only:
                break
            raise _exhausted_error(engine.requirement(), nreg)
        if status == _POSITIVE:
            break
        assert step is not None
        if em.enabled:
            em.emit(
                "inter.step",
                step=step.step,
                kind=step.kind,
                threads=step.involved,
                delta=step.delta,
                requirement=engine.requirement(),
                nreg=nreg,
                pr=engine.prs(),
                sr=engine.srs(),
                move_cost=engine.move_cost(),
            )
            reg = obs_metrics.registry()
            reg.counter("inter.steps").inc()
            reg.counter("inter.steps", kind=step.kind).inc()
            reg.histogram("inter.step_delta").observe(step.delta)
    else:
        if em.enabled:
            em.emit(
                "inter.step_cap",
                steps=engine.step_no,
                max_steps=engine.max_steps,
                requirement=engine.requirement(),
                nreg=nreg,
                zero_cost_only=zero_cost_only,
            )
            obs_metrics.registry().counter("inter.step_cap").inc()
        raise _step_cap_error(engine.step_no, engine.max_steps)

    if em.enabled:
        em.emit(
            "inter.done",
            steps=engine.step_no,
            requirement=engine.requirement(),
            nreg=nreg,
            fits=engine.requirement() <= nreg,
            pr=engine.prs(),
            sr=engine.srs(),
        )
    return engine.materialize(engine.contexts(), nreg)


class SharedDescent:
    """One budget-independent Figure-8 descent serving every budget.

    The greedy loop reads ``nreg`` only in its stop condition, so a fresh
    :func:`allocate_threads` at budget ``B`` commits exactly the first
    steps of this descent until the requirement first drops to ``B``.
    ``SharedDescent`` runs those commits once, records an O(1) context
    checkpoint after each (every committed step lowers the requirement by
    exactly one register, so checkpoints cover every reachable budget),
    and materializes results on demand:

    * :meth:`result` -- the :class:`InterThreadResult` for a budget,
      byte-identical to a fresh run (or the identical
      :class:`~repro.errors.AllocationError` when infeasible);
    * :meth:`zero_cost_result` -- the Figure-14 ``zero_cost_only``
      answer, read off the same trajectory: the state just before the
      first committed step whose chosen delta costs moves;
    * :meth:`reachable` -- the smallest satisfiable budget at or above a
      requested one, replacing allocate-until-success probing.

    The descent is resumable and monotonic: queries only ever extend the
    committed prefix, so an instance can be cached and shared
    (:meth:`repro.core.cache.AnalysisCache.descent`) -- repeated budget
    queries on a warm trajectory are dictionary lookups.  Probe caches
    stay live across checkpoints; telemetry reports committed steps as
    ``descent.step`` events under the shared ``inter.steps`` /
    ``inter.probes`` counters.
    """

    def __init__(
        self,
        analyses: Sequence[ThreadAnalysis],
        policy: str = "greedy",
        bounds: Optional[Sequence[Bounds]] = None,
        _max_steps: Optional[int] = None,
    ):
        self._engine = _DescentEngine(
            analyses, policy=policy, bounds=bounds, _max_steps=_max_steps
        )
        #: Requirement levels in committed order (strictly descending).
        self._trajectory: List[int] = []
        self._states: Dict[int, Tuple[AllocContext, ...]] = {}
        self._steps_at: Dict[int, int] = {}
        #: Requirement of the zero-cost stop state, once known.
        self._zero_requirement: Optional[int] = None
        self._record()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def requirement(self) -> int:
        """The current (lowest reached so far) register requirement."""
        return self._engine.requirement()

    @property
    def initial_requirement(self) -> int:
        return self._trajectory[0]

    @property
    def steps(self) -> int:
        """Committed reductions so far."""
        return self._engine.step_no

    @property
    def exhausted(self) -> bool:
        """True once every reduction direction hit its lower bound."""
        return self._engine.exhausted

    # ------------------------------------------------------------------
    # Descent drivers.
    # ------------------------------------------------------------------
    def _record(self) -> None:
        req = self._engine.requirement()
        if req not in self._states:
            self._trajectory.append(req)
            self._states[req] = self._engine.contexts()
            self._steps_at[req] = self._engine.step_no

    def _advance_once(self) -> bool:
        """Commit one more reduction; False once the descent is done."""
        engine = self._engine
        if engine.step_no >= engine.max_steps:
            self._emit_step_cap(engine.step_no, engine.requirement())
            raise _step_cap_error(engine.step_no, engine.max_steps)
        prev_req = engine.requirement()
        status, step = engine.advance()
        if status == _EXHAUSTED:
            if self._zero_requirement is None:
                self._zero_requirement = prev_req
            return False
        assert step is not None
        if self._zero_requirement is None and step.delta > 0:
            # A fresh zero_cost_only run stops HERE, before committing:
            # its answer is the state this commit descended from.
            self._zero_requirement = prev_req
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "descent.step",
                step=step.step,
                kind=step.kind,
                threads=step.involved,
                delta=step.delta,
                requirement=engine.requirement(),
                pr=engine.prs(),
                sr=engine.srs(),
                move_cost=engine.move_cost(),
            )
            reg = obs_metrics.registry()
            reg.counter("inter.steps").inc()
            reg.counter("inter.steps", kind=step.kind).inc()
            reg.histogram("inter.step_delta").observe(step.delta)
        self._record()
        return True

    def run_to(self, budget: int) -> bool:
        """Extend the descent until ``budget`` is satisfied (True) or the
        bounds are exhausted first (False)."""
        while self._engine.requirement() > budget:
            if self._engine.exhausted or not self._advance_once():
                return False
        return True

    def run_zero_cost(self) -> int:
        """Extend the descent past the zero-cost boundary; returns the
        requirement of the zero-cost stop state."""
        while self._zero_requirement is None:
            self._advance_once()
        return self._zero_requirement

    # ------------------------------------------------------------------
    # Read-offs.
    # ------------------------------------------------------------------
    def reachable(self, nreg: int) -> int:
        """The smallest budget >= ``nreg`` the loop actually satisfies
        (the final requirement when ``nreg`` is below the loop's reach)."""
        return nreg if self.run_to(nreg) else self._engine.requirement()

    def result(self, nreg: int) -> InterThreadResult:
        """The allocation at budget ``nreg`` -- byte-identical to a fresh
        :func:`allocate_threads` there, including the
        :class:`~repro.errors.AllocationError` when infeasible."""
        if not self.run_to(nreg):
            raise _exhausted_error(self._engine.requirement(), nreg)
        req = next(r for r in self._trajectory if r <= nreg)
        self._check_cap(self._steps_at[req])
        return self._engine.materialize(self._states[req], nreg)

    def zero_cost_result(self, nreg: int = 128) -> InterThreadResult:
        """The ``zero_cost_only`` (Figure-14) allocation, stamped with
        ``nreg`` -- byte-identical to a fresh zero-cost run."""
        req = self.run_zero_cost()
        self._check_cap(self._steps_at[req])
        return self._engine.materialize(self._states[req], nreg)

    # ------------------------------------------------------------------
    # Step-cap fidelity (the `_max_steps` test hook).
    # ------------------------------------------------------------------
    def _check_cap(self, steps_needed: int) -> None:
        # A fresh run needs one loop iteration beyond its last commit to
        # notice it is done, so it trips the cap whenever
        # ``max_steps <= commits``; mirror that here so the hook behaves
        # identically whichever driver runs the descent.
        max_steps = self._engine.max_steps
        if max_steps <= steps_needed:
            at = min(max_steps, len(self._trajectory) - 1)
            self._emit_step_cap(max_steps, self._trajectory[at])
            raise _step_cap_error(max_steps, max_steps)

    def _emit_step_cap(self, steps: int, requirement: int) -> None:
        em = obs.get_emitter()
        if em.enabled:
            em.emit(
                "inter.step_cap",
                steps=steps,
                max_steps=self._engine.max_steps,
                requirement=requirement,
            )
            obs_metrics.registry().counter("inter.step_cap").inc()


def allocate_threads_descent(
    analyses: Sequence[ThreadAnalysis],
    budgets: Sequence[int],
    zero_cost: bool = False,
    policy: str = "greedy",
    bounds: Optional[Sequence[Bounds]] = None,
    _max_steps: Optional[int] = None,
) -> SharedDescent:
    """One shared Figure-8 descent covering every budget in ``budgets``.

    Runs the greedy loop once from the upper bounds, checkpointing as it
    crosses each requested budget (and the zero-cost boundary when
    ``zero_cost`` is set), and returns the :class:`SharedDescent`:
    call :meth:`~SharedDescent.result` / :meth:`~SharedDescent.zero_cost_result`
    to materialize the per-budget outcomes.  Infeasible budgets do not
    raise here -- they raise the fresh-run-identical error from
    ``result`` -- so one unreachable point never aborts a whole sweep.
    """
    descent = SharedDescent(
        analyses, policy=policy, bounds=bounds, _max_steps=_max_steps
    )
    for nreg in sorted(set(budgets), reverse=True):
        descent.run_to(nreg)
    if zero_cost:
        descent.run_zero_cost()
    return descent
