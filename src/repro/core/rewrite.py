"""Materialize an allocation: physical registers plus split moves.

Rewriting replaces every virtual-register occurrence with the physical
register of the piece covering that occurrence's slot, then inserts one
``mov`` per crossing flow edge (a flow edge whose endpoints lie in pieces
of different colors).

When several ranges cross pieces on the *same* control-flow edge the moves
form a parallel copy and must be sequenced so no source is overwritten
before it is read.  :func:`sequence_parallel_copy` emits copies in
topological order of the "dst feeds another copy's src" relation and breaks
register-permutation cycles with XOR swaps (the ISA has no scratch register
to spare by construction, but ``xor`` needs none).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cfg.edit import ProgramEditor
from repro.core.analysis import ThreadAnalysis
from repro.core.assign import ThreadRegisterMap
from repro.core.context import AllocContext
from repro.errors import AllocationError
from repro.ir.instruction import Instruction
from repro.ir.opcodes import Opcode
from repro.ir.operands import PhysReg, Reg
from repro.ir.program import Program


def sequence_parallel_copy(
    copies: Sequence[Tuple[PhysReg, PhysReg]]
) -> List[Instruction]:
    """Order ``(dst, src)`` copies so each source is read before being
    overwritten; break cycles with XOR swaps.

    Duplicate destinations are illegal (two values cannot land in one
    register); identity copies are dropped.
    """
    pending = [(d, s) for d, s in copies if d != s]
    dsts = [d for d, _ in pending]
    if len(set(dsts)) != len(dsts):
        raise AllocationError(f"parallel copy writes a register twice: {copies}")
    out: List[Instruction] = []
    while pending:
        srcs = {s for _, s in pending}
        ready = [(d, s) for d, s in pending if d not in srcs]
        if ready:
            for d, s in ready:
                out.append(Instruction(Opcode.MOV, (d, s)))
            pending = [c for c in pending if c not in ready]
            continue
        # Pure cycle: every dst is someone's src.  Swap the first copy's
        # endpoints with XORs; that resolves one copy and shortens the
        # cycle, so the loop terminates.
        d, s = pending[0]
        out.append(Instruction(Opcode.XOR, (d, d, s)))
        out.append(Instruction(Opcode.XOR, (s, s, d)))
        out.append(Instruction(Opcode.XOR, (d, d, s)))
        # After the swap, d holds the value that was in s (copy done) and
        # s holds d's old value; rewrite remaining copies reading d to
        # read s instead, dropping any that become identities.
        rest = []
        for d2, s2 in pending[1:]:
            s2 = s if s2 == d else s2
            if d2 != s2:
                rest.append((d2, s2))
        pending = rest
    return out


def rewrite_program(
    analysis: ThreadAnalysis,
    context: AllocContext,
    regmap: ThreadRegisterMap,
) -> Program:
    """Produce the physical-register program for one allocated thread."""
    program = analysis.program

    def phys_at(reg: Reg, slot: int) -> PhysReg:
        return regmap.phys(context.piece_of(reg, slot).color)

    rewritten: List[Instruction] = []
    for i, instr in enumerate(program.instrs):
        new_ops = []
        sig = instr.spec.signature
        for role, op in zip(sig, instr.operands):
            if role in ("D", "U"):
                new_ops.append(phys_at(op, i))  # type: ignore[arg-type]
            else:
                new_ops.append(op)
        rewritten.append(instr.with_operands(new_ops))
    base = Program(name=program.name, instrs=rewritten, labels=dict(program.labels))

    # Group crossing flow edges by control-flow edge, then sequence each
    # group as a parallel copy.
    by_edge: Dict[Tuple[int, int], List[Tuple[PhysReg, PhysReg]]] = {}
    for reg, i, j in context.crossing_edges():
        src = phys_at(reg, i)
        dst = phys_at(reg, j)
        by_edge.setdefault((i, j), []).append((dst, src))

    if not by_edge:
        return base
    editor = ProgramEditor(base)
    for (i, j), copies in sorted(by_edge.items()):
        editor.insert_on_edge(i, j, sequence_parallel_copy(copies))
    return editor.commit()
