"""Color -> physical-register assignment across one PU's threads.

The register file of ``Nreg`` physical registers is laid out as::

    [ thread0 private | thread1 private | ... | globally shared | unused ]

Thread ``i``'s private colors ``0 .. PR_i - 1`` map into its private
window; shared colors ``PR_i .. PR_i + SR_i - 1`` map into the single
global shared window of ``SGR = max_i SR_i`` registers, *identically for
every thread* -- that is exactly what makes them shared.  The safety
obligation (values in the shared window are dead at every CSB of their
thread) is guaranteed by the allocator and re-checked dynamically by the
simulator's paranoid mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.inter import InterThreadResult
from repro.errors import AllocationError
from repro.ir.operands import PhysReg


@dataclass
class ThreadRegisterMap:
    """Physical mapping for one thread."""

    private_base: int
    pr: int
    sr: int
    shared_base: int

    def phys(self, color: int) -> PhysReg:
        if color < 0 or color >= self.pr + self.sr:
            raise AllocationError(
                f"color {color} outside palette (pr={self.pr}, sr={self.sr})"
            )
        if color < self.pr:
            return PhysReg(self.private_base + color)
        return PhysReg(self.shared_base + (color - self.pr))

    def private_registers(self) -> Tuple[int, int]:
        """Half-open physical index range of this thread's private window."""
        return (self.private_base, self.private_base + self.pr)


@dataclass
class RegisterAssignment:
    """Physical layout for all threads of one PU."""

    maps: List[ThreadRegisterMap]
    shared_base: int
    sgr: int
    nreg: int

    def shared_registers(self) -> Tuple[int, int]:
        return (self.shared_base, self.shared_base + self.sgr)


def assign_physical(result: InterThreadResult) -> RegisterAssignment:
    """Lay out private windows and the shared window for a PU."""
    total_private = result.total_private
    sgr = result.sgr
    if total_private + sgr > result.nreg:
        raise AllocationError(
            f"allocation needs {total_private} private + {sgr} shared "
            f"registers, more than Nreg={result.nreg}"
        )
    maps: List[ThreadRegisterMap] = []
    base = 0
    shared_base = total_private
    for t in result.threads:
        maps.append(
            ThreadRegisterMap(
                private_base=base,
                pr=t.pr,
                sr=t.sr,
                shared_base=shared_base,
            )
        )
        base += t.pr
    return RegisterAssignment(
        maps=maps, shared_base=shared_base, sgr=sgr, nreg=result.nreg
    )
