"""Symmetric register allocation (paper section 8).

When every hardware thread runs the *same* program, the budget constraint
collapses to ``Nthd * PR + SR <= Nreg`` and the search space is small
enough to scan exhaustively: for each feasible ``PR`` take the largest
affordable ``SR`` (more shared registers never hurt), realize the context,
and keep the cheapest solution by move cost (ties broken toward fewer total
registers, then larger PR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.analysis import ThreadAnalysis
from repro.core.bounds import Bounds, estimate_bounds
from repro.core.context import AllocContext
from repro.core.intra import IntraAllocator
from repro.errors import AllocationError


@dataclass
class SymmetricResult:
    """Chosen symmetric allocation for one program on ``nthd`` threads."""

    analysis: ThreadAnalysis
    bounds: Bounds
    nthd: int
    nreg: int
    pr: int
    sr: int
    context: AllocContext
    move_cost: int

    @property
    def total_registers(self) -> int:
        return self.nthd * self.pr + self.sr


def allocate_symmetric(
    analysis: ThreadAnalysis, nthd: int, nreg: int
) -> SymmetricResult:
    """Exhaustively pick the best ``(PR, SR)`` for the SRA problem."""
    bounds = estimate_bounds(analysis)
    best: Optional[Tuple[Tuple[int, int, int], SymmetricResult]] = None
    for pr in range(bounds.min_pr, bounds.max_pr + 1):
        budget_sr = nreg - nthd * pr
        if budget_sr < 0:
            break
        sr = min(bounds.max_r - pr, budget_sr)
        if pr + sr < bounds.min_r or sr < 0:
            continue
        allocator = IntraAllocator(analysis, bounds)
        context = allocator.realize(pr, sr)
        cost = context.move_cost()
        key = (cost, nthd * pr + sr, -pr)
        if best is None or key < best[0]:
            best = (key, SymmetricResult(
                analysis=analysis,
                bounds=bounds,
                nthd=nthd,
                nreg=nreg,
                pr=pr,
                sr=sr,
                context=context,
                move_cost=cost,
            ))
    if best is None:
        raise AllocationError(
            f"{analysis.program.name}: no symmetric allocation fits "
            f"{nthd} threads in {nreg} registers (bounds {bounds})"
        )
    return best[1]
